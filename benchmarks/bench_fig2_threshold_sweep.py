"""Fig. 2: congested s-day / s-hour fractions vs threshold H."""

from repro.experiments import fig2


def test_fig2_threshold_sweep(benchmark, cache, emit):
    result = benchmark.pedantic(fig2.run, args=(cache,),
                                rounds=1, iterations=1)
    emit("fig2", fig2.render(result))

    # The curves must be monotonically non-increasing in H.
    for region, fractions in result.day_fractions.items():
        assert all(a >= b - 1e-12
                   for a, b in zip(fractions, fractions[1:])), region

    # Shape: the elbow lands near the paper's H = 0.5 and the labeled
    # fractions sit in (or near) the paper's bands.
    assert 0.3 <= result.chosen_threshold <= 0.65
    d_lo, d_hi = result.day_range_at(0.5)
    h_lo, h_hi = result.hour_range_at(0.5)
    assert 0.03 <= d_lo and d_hi <= 0.45
    assert h_hi <= 0.06
