"""Fig. 4: p95 download vs p5 latency scatter, three panels."""

from repro.experiments import fig4


def test_fig4_perf_scatter(benchmark, cache, emit):
    result = benchmark.pedantic(fig4.run, args=(cache,),
                                rounds=1, iterations=1)
    emit("fig4", fig4.render(result))

    panel_a = result.panels["4a topology (premium)"]
    assert len(panel_a.points) > 50
    # Paper: 80% of servers between 200-600 Mbps; >90% under 150 ms;
    # nothing saturates the 1 Gbps downlink shaping.
    assert panel_a.in_band_fraction() >= 0.6
    assert panel_a.low_latency_fraction() >= 0.8
    assert panel_a.max_download <= 1000.0

    prem = result.panels["4b differential premium"]
    std = result.panels["4c differential standard"]
    assert prem.points and std.points
    # Paper: the premium tier shows the smaller throughput variance.
    assert prem.download_std <= std.download_std * 1.35
