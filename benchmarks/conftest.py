"""Shared fixtures for the benchmark harness.

All benchmarks share one :class:`~repro.experiments.runner.ExperimentCache`
(scenario + pilot scans + campaign datasets), so the expensive
longitudinal campaigns run once per pytest session.  Scale and duration
come from ``REPRO_SCALE`` / ``REPRO_DAYS`` / ``REPRO_SEED`` (defaults:
0.35 / 28 / 7; the paper's full size is scale 1.0 over 153 days).

Each benchmark prints the paper-comparable rows through the ``emit``
fixture, which bypasses pytest's capture so the tables land in the
tee'd benchmark log.
"""

import pathlib

import pytest

from repro.experiments import shared_scenario

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def cache():
    """The process-wide experiment cache."""
    return shared_scenario()


@pytest.fixture()
def emit(capsys):
    """Print a rendered experiment block outside pytest capture."""

    def _emit(name: str, text: str) -> None:
        OUTPUT_DIR.mkdir(exist_ok=True)
        (OUTPUT_DIR / f"{name}.txt").write_text(text + "\n",
                                                encoding="utf-8")
        with capsys.disabled():
            print()
            print(text)

    return _emit
