"""Shard/batch scaling: the campaign hot loop across shards x batch.

Runs one fixed multi-region campaign through every ``shards`` x
``batch`` combination (shards in {1, 2, 4}, batch on/off), measures
wall time, engine events/sec, completed tests/sec and the process RSS
high-water mark, and records the matrix as the first point of the perf
trajectory in ``BENCH_campaign.json`` at the repo root (schema:
``benchmarks/README.md``).  Two assertions keep the trajectory honest:

* the headline speedup - events/sec at shards=4 + batch must be at
  least ``MIN_SPEEDUP``x the seed scalar path (shards=1, no batch) on
  the same campaign;
* the planet-scale demo - a campaign spanning 10 regions with a
  10x server budget (10x the default ``repro campaign`` shape in both
  dimensions), run sharded + batched, must complete *more* tests in
  *less* wall time than the scalar path needs for this bench's default
  campaign.  That is the "wall-time budget of today's default
  campaign": planet-scale coverage now fits in the time the seed path
  spends on an ordinary run.

The expensive parts (scenario build + topology deploys, ~30s) run
once; every matrix cell reuses the same deployed plans, so cells
differ only in the execution strategy under test.  Billing is not
charged on the timed runs so repeated campaigns cannot exhaust the
scenario's cost budget mid-matrix.  Byte-identical digests across all
cells are tier-1 guarantees (``tests/test_shard.py``), not re-proved
here.

Wall-clock timing is inherently nondeterministic; this file lives in
``benchmarks/`` (not ``src/repro``) exactly so the lint determinism
rules do not apply to it.
"""

import json
import pathlib
import resource
import time

from repro.experiments.scenario import build_scenario
from repro.report.tables import TextTable

#: Default campaign for the matrix: six US regions, a 40-server budget
#: each, two days.  Big enough that per-call overhead cannot hide the
#: asymptotic behaviour, small enough for a per-PR benchmark run.
SEED = 7
SCALE = 0.35
DAYS = 2
BUDGET_SERVERS = 40
REGIONS = ("us-west1", "us-west2", "us-west4",
           "us-east1", "us-east4", "us-central1")

#: Acceptance floor: events/sec at shards=4 + batch vs the seed scalar
#: path (shards=1, batch off) on the same campaign.
MIN_SPEEDUP = 3.0

#: Planet-scale demo: 10x the regions and 10x the server budget of the
#: default ``repro campaign`` shape (one region, ``--servers 8``), at
#: the default demo scale used by the golden tests.
PLANET_REGIONS = 10
PLANET_BUDGET_SERVERS = 80
PLANET_SCALE = 0.05
PLANET_SHARDS = 4

#: Matrix order: the seed scalar path first (it is the baseline).
MATRIX = ((1, False), (2, False), (4, False),
          (1, True), (2, True), (4, True))

BENCH_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_campaign.json"

#: Trajectory point label - bump when re-anchoring the perf curve.
#: Previous points stay readable in the git history of the JSON file.
LABEL = "shard-v2 (cross-cloud point rides along)"


class _EventCounter:
    """Counts every event the campaign bus emits (uniform accounting
    across the scalar, batch, and sharded-replay paths)."""

    def __init__(self):
        self.n = 0

    def on_event(self, event):
        self.n += 1


def _peak_rss_kb():
    """Process RSS high-water mark so far, in KiB (monotone)."""
    return int(resource.getrusage(resource.RUSAGE_SELF).ru_maxrss)


def _deploy(clasp, regions, budget_servers):
    plans = []
    for region in regions:
        selection = clasp.select_topology_servers(region)
        plans.append(clasp.deploy_topology(region, selection,
                                           budget_servers=budget_servers))
    return plans


def _timed_run(clasp, plans, shards, batch):
    counter = _EventCounter()
    start = time.perf_counter()
    dataset = clasp.run_campaign(plans, days=DAYS, charge_billing=False,
                                 observers=[counter],
                                 shards=shards, batch=batch)
    wall = time.perf_counter() - start
    return {
        "shards": shards,
        "batch": batch,
        "wall_s": round(wall, 3),
        "events": counter.n,
        "events_per_sec": round(counter.n / wall, 1),
        "tests": dataset.completed_tests,
        "tests_per_sec": round(dataset.completed_tests / wall, 1),
        "peak_rss_kb": _peak_rss_kb(),
    }


def test_bench_shard_scale(emit):
    scenario = build_scenario(seed=SEED, scale=SCALE, faults=None)
    plans = _deploy(scenario.clasp, REGIONS, BUDGET_SERVERS)

    rows = [_timed_run(scenario.clasp, plans, shards, batch)
            for shards, batch in MATRIX]
    baseline = rows[0]
    best = next(r for r in rows if r["shards"] == 4 and r["batch"])
    speedup = best["events_per_sec"] / baseline["events_per_sec"]

    # Planet-scale demo: fresh scenario at the default demo scale so the
    # shape (10 regions x 80-server budget) matches "10x the default
    # campaign" rather than "10x this bench's matrix campaign".
    planet = build_scenario(seed=SEED, scale=PLANET_SCALE, faults=None)
    regions = planet.clasp.platform.available_regions()[:PLANET_REGIONS]
    planet_plans = _deploy(planet.clasp, regions, PLANET_BUDGET_SERVERS)
    demo = _timed_run(planet.clasp, planet_plans, PLANET_SHARDS, True)
    demo_row = {
        "regions": len(planet_plans),
        "budget_servers": PLANET_BUDGET_SERVERS,
        "scale": PLANET_SCALE,
        "days": DAYS,
        "budget_wall_s": baseline["wall_s"],
        **demo,
    }

    table = TextTable(
        ["shards", "batch", "wall s", "events/s", "tests/s", "rss MiB"],
        title=f"shard/batch scaling: {len(REGIONS)} regions x "
              f"{BUDGET_SERVERS} servers x {DAYS} days "
              f"({baseline['tests']} tests; speedup {speedup:.2f}x)")
    for row in rows:
        table.add_row([str(row["shards"]),
                       "on" if row["batch"] else "off",
                       f"{row['wall_s']:.2f}",
                       f"{row['events_per_sec']:.0f}",
                       f"{row['tests_per_sec']:.0f}",
                       f"{row['peak_rss_kb'] / 1024:.0f}"])
    table.add_row(["planet", f"{demo_row['regions']}R x s{PLANET_SHARDS}",
                   f"{demo['wall_s']:.2f}",
                   f"{demo['events_per_sec']:.0f}",
                   f"{demo['tests_per_sec']:.0f}",
                   f"{demo['peak_rss_kb'] / 1024:.0f}"])
    emit("bench_shard_scale", table.render())

    # Preserve the cross-cloud point (bench_cross_cloud.py) so the two
    # benches can re-anchor their own sections independently.
    doc = {}
    if BENCH_PATH.exists():
        doc = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    doc.update({
        "schema": "bench-campaign/v4",
        "generated_by": "benchmarks/bench_shard_scale.py",
        "label": LABEL,
        "shape": {
            "seed": SEED, "scale": SCALE, "days": DAYS,
            "regions": list(REGIONS),
            "budget_servers": BUDGET_SERVERS, "faults": "off",
        },
        "rows": rows,
        "speedup_shards4_batch_vs_scalar": round(speedup, 2),
        "planet_demo": demo_row,
    })
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n",
                          encoding="utf-8")

    assert speedup >= MIN_SPEEDUP, (
        f"shards=4 + batch reached only {speedup:.2f}x the scalar "
        f"events/sec (floor {MIN_SPEEDUP}x)")
    # The demo must beat today's default campaign on both axes: more
    # completed tests, less wall time, despite covering 10x regions.
    assert demo["tests"] > baseline["tests"], (
        f"planet demo completed {demo['tests']} tests vs the default "
        f"campaign's {baseline['tests']}")
    assert demo["wall_s"] <= baseline["wall_s"], (
        f"planet demo took {demo['wall_s']:.2f}s against the default "
        f"campaign's scalar wall-time budget of {baseline['wall_s']:.2f}s")
