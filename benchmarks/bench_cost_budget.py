"""Economics: why the paper measured budget-capped server subsets.

The paper's deployment cost over USD 6,000/month, which forced three
regions onto partial server lists.  This bench reproduces the
economics: the projected bill of a full (every selected server,
every region) deployment vs the budget-capped one actually run, and a
live demonstration that a hard budget stops a campaign mid-flight.
"""

import pytest

from repro.cloud.billing import CostTracker
from repro.cloud.tiers import NetworkTier
from repro.core.orchestrator import Orchestrator
from repro.errors import BudgetExhaustedError
from repro.report.tables import TextTable
from repro.units import transferred_bytes

#: Per-test upload volume at the 100 Mbps cap for 15 s.
UPLOAD_BYTES_PER_TEST = transferred_bytes(95.0, 15.0)


def _monthly_bill(n_servers: int) -> float:
    """Projected 30-day bill for hourly coverage of *n_servers*."""
    costs = CostTracker()
    n_vms = Orchestrator.vms_needed(n_servers)
    costs.charge_vm_hours(0.095 * n_vms, 30 * 24)
    tests = n_servers * 24 * 30
    costs.charge_egress(tests * UPLOAD_BYTES_PER_TEST,
                        NetworkTier.PREMIUM)
    costs.charge_storage(tests * 2_000_000, 1.0)
    return costs.total_usd


def _evaluate(cache):
    rows = []
    full_total = 0.0
    capped_total = 0.0
    for region in cache.scenario.table1_regions:
        selection = cache.topology_selection(region)
        plan = cache.topology_plan(region)
        full = _monthly_bill(len(selection.selected))
        capped = _monthly_bill(len(plan.server_ids))
        full_total += full
        capped_total += capped
        rows.append((region, len(selection.selected), full,
                     len(plan.server_ids), capped))
    return rows, full_total, capped_total


def test_cost_budget(benchmark, cache, emit):
    rows, full_total, capped_total = benchmark.pedantic(
        _evaluate, args=(cache,), rounds=1, iterations=1)
    table = TextTable(
        ["region", "selected", "full $/month", "measured",
         "capped $/month"],
        title="Economics: full vs budget-capped deployment "
              "(paper: >$6k/month)")
    for region, selected, full, measured, capped in rows:
        table.add_row([region, selected, f"{full:,.0f}",
                       measured, f"{capped:,.0f}"])
    table.add_row(["TOTAL", "", f"{full_total:,.0f}", "",
                   f"{capped_total:,.0f}"])
    emit("cost_budget", table.render())

    # The paper's economics: a full multi-region deployment costs
    # thousands of dollars per month, and capping saves real money.
    assert full_total > 2000
    assert capped_total < full_total

    # A hard budget stops spend mid-campaign.
    costs = CostTracker(budget_usd=10.0)
    with pytest.raises(BudgetExhaustedError):
        for _ in range(10_000):
            costs.charge_egress(UPLOAD_BYTES_PER_TEST,
                                NetworkTier.PREMIUM)
    assert costs.total_usd <= 10.0
