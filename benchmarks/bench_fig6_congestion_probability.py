"""Fig. 6: hourly congestion probability of top congested servers."""

from repro.experiments import fig6


def test_fig6_congestion_probability(benchmark, cache, emit):
    result = benchmark.pedantic(fig6.run, args=(cache,),
                                rounds=1, iterations=1)
    emit("fig6", fig6.render(result))

    for region in ("us-east1", "us-west1"):
        profiles = result.panels[region]
        assert profiles, f"no congested servers found in {region}"
        for p in profiles:
            assert len(p.probability) == 24
            assert all(0.0 <= v <= 1.0 for v in p.probability)
        # Paper: the probability of these congested servers is "often
        # below 0.1" but clearly nonzero at the peak.
        assert 0.0 < result.peak_probability(region) <= 1.0

    # Paper (Fig. 6c): some pairs congest more on the standard tier.
    assert result.tier_pairs, "no congested differential pairs"
    assert result.standard_more_congested_count() >= 1
