"""Engine overhead: the hour loop before vs after the event bus.

The PR that introduced :mod:`repro.engine` replaced the campaign
runner's inline hour loop (direct dataset/billing mutation) with an
event bus and observers.  This bench times the same one-region
campaign three ways - bare (dataset + billing observers only), with a
metrics observer attached, and with metrics + a JSON-lines trace - so
the per-observer cost of the instrumentation seam stays visible in
the benchmark log.

Wall-clock timing is inherently nondeterministic; this file lives in
``benchmarks/`` (not ``src/repro``) exactly so the lint determinism
rules do not apply to it.
"""

import io
import time

from repro.engine import MetricsObserver, TraceObserver
from repro.experiments.scenario import build_scenario
from repro.report.tables import TextTable
from repro.simclock import CAMPAIGN_START

#: Small fixed shape: the bench compares loop variants against each
#: other, not against the paper, so it only needs to be stable.
SEED = 11
SCALE = 0.1
DAYS = 2
N_SERVERS = 10


def _run_once(observers):
    scenario = build_scenario(seed=SEED, scale=SCALE, stories=False)
    clasp = scenario.clasp
    ids = [s.server_id
           for s in scenario.catalog.servers(country="US")[:N_SERVERS]]
    plan = clasp.orchestrator.deploy_topology(
        "us-west1", ids, float(CAMPAIGN_START))
    start = time.perf_counter()
    dataset = clasp.run_campaign([plan], days=DAYS, observers=observers)
    elapsed = time.perf_counter() - start
    return dataset, elapsed


def test_bench_campaign_engine(emit):
    variants = [
        ("bare hour loop", lambda: _run_once([])),
        ("+ metrics observer", lambda: _run_once([MetricsObserver()])),
        ("+ metrics + trace",
         lambda: _run_once([MetricsObserver(),
                            TraceObserver(io.StringIO())])),
    ]
    rows = []
    baseline = None
    n_tests = None
    for label, run in variants:
        dataset, elapsed = run()
        if n_tests is None:
            n_tests = dataset.completed_tests
        assert dataset.completed_tests == n_tests  # same work every time
        if baseline is None:
            baseline = elapsed
        rows.append((label, elapsed, elapsed / baseline))

    table = TextTable(
        ["variant", "seconds", "vs bare"],
        title=f"campaign hour loop: {DAYS} days x {N_SERVERS} servers "
              f"({n_tests} tests)")
    for label, elapsed, ratio in rows:
        table.add_row([label, f"{elapsed:.2f}", f"{ratio:.2f}x"])
    emit("bench_campaign_engine", table.render())

    # The observer seam must stay cheap relative to the campaign
    # itself; a generous bound still catches pathological regressions
    # (e.g. re-sorting a series per event) without flaking on noise.
    for label, elapsed, ratio in rows[1:]:
        assert ratio < 3.0, f"{label} slowed the hour loop {ratio:.1f}x"
