"""Always-on monitoring: incremental detection vs hourly rescans.

An always-on monitor that recomputes batch ``detect()`` every hour
pays the full dataset scan 24x a day; the streaming detector pays
O(new observations) per hour and seals days as their local midnight
passes.  This bench replays the default ``repro campaign`` shape
(seed 7, scale 0.2, one region, 8-server budget, 7 days) hour by hour
through :class:`~repro.core.streaming.StreamingCongestionDetector`,
measures the mean per-hour incremental cost against one full
``detect()`` rescan (the steady-state hourly cost of the naive
monitor), and asserts the incremental path is at least
``MIN_SPEEDUP``x cheaper.  Equivalence of the two outputs is asserted
here too (and is a tier-1 guarantee: ``tests/test_streaming.py``).

A serving-load point rides along: :func:`~repro.serve.simulate_load`
pushes ~1.2M cached dashboard queries through a
:class:`~repro.serve.MonitorService` and records throughput, hit rate,
and staleness.  The point lands in ``BENCH_campaign.json`` under the
``streaming_detect`` key (schema ``bench-campaign/v4``,
merge-preserving like the other campaign benches).

Wall-clock timing is inherently nondeterministic; this file lives in
``benchmarks/`` (not ``src/repro``) exactly so the lint determinism
rules do not apply to it.
"""

import json
import pathlib
import time

from repro.core.congestion import detect
from repro.core.streaming import (StreamingCongestionDetector,
                                  dataset_offsets, iter_hourly)
from repro.experiments.scenario import build_scenario
from repro.report.tables import TextTable
from repro.rng import SeedTree
from repro.serve import MonitorService, simulate_load
from repro.units import HOUR

#: The default ``repro campaign`` shape.
SEED = 7
SCALE = 0.2
REGION = "us-west1"
BUDGET_SERVERS = 8
DAYS = 7

#: Acceptance floor: mean per-hour incremental update vs one full
#: ``detect()`` rescan of the final dataset.
MIN_SPEEDUP = 10.0

#: Serving-load point: 24 simulated hours of dashboard traffic.
CONSUMERS_PER_HOUR = 50_000
LOAD_HOURS = 24

BENCH_PATH = (pathlib.Path(__file__).resolve().parent.parent
              / "BENCH_campaign.json")

LABEL = "streaming-v1 (incremental vs rescan)"


def _rows(dataset, metric="download"):
    rows = []
    for pair in dataset.pairs():
        series = dataset.table.series(pair)
        for ts, value in zip(series["ts"], series[metric]):
            rows.append((float(ts), pair, float(value)))
    rows.sort(key=lambda row: row[0])
    return rows


def _best_of(n, fn):
    best = float("inf")
    result = None
    for _ in range(n):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def test_bench_streaming(emit):
    scenario = build_scenario(seed=SEED, scale=SCALE, faults=None)
    clasp = scenario.clasp
    selection = clasp.select_topology_servers(REGION)
    plan = clasp.deploy_topology(REGION, selection,
                                 budget_servers=BUDGET_SERVERS)
    dataset = clasp.run_campaign([plan], days=DAYS,
                                 charge_billing=False)
    rows = _rows(dataset)
    n_hours = DAYS * 24

    # The naive always-on monitor: a full batch rescan (steady-state
    # hourly cost once the campaign has accumulated its data).
    rescan_wall, batch = _best_of(3, lambda: detect(dataset))

    # The incremental path: one detector fed hour by hour.
    def replay():
        detector = StreamingCongestionDetector(
            dataset.start_ts, dataset_offsets(dataset))
        for hour_ts, hour_rows in iter_hourly(rows, dataset.start_ts,
                                              dataset.end_ts):
            detector.advance(hour_ts)
            for ts, pair, value in hour_rows:
                detector.observe(pair, ts, value)
        return detector

    stream_wall, detector = _best_of(3, replay)
    per_hour = stream_wall / n_hours
    streamed = detector.finalize()
    assert streamed == batch
    speedup = rescan_wall / per_hour

    # Serving-load point: ~1.2M cached dashboard queries.
    service = MonitorService(detector, ttl_s=HOUR)
    start = time.perf_counter()
    load = simulate_load(service, SeedTree(SEED).child("bench.serve"),
                         dataset.end_ts, hours=LOAD_HOURS,
                         consumers_per_hour=CONSUMERS_PER_HOUR)
    load_wall = time.perf_counter() - start

    table = TextTable(
        ["path", "wall", "unit"],
        title=f"streaming detection: {len(dataset.pairs())} pairs x "
              f"{n_hours} hours ({len(rows)} observations; "
              f"incremental {speedup:.0f}x cheaper per hour)")
    table.add_row(["batch detect() rescan", f"{rescan_wall * 1e3:.2f}ms",
                   "per hour (naive monitor)"])
    table.add_row(["incremental update", f"{per_hour * 1e6:.1f}us",
                   "per hour (streaming)"])
    table.add_row(["full replay + advance", f"{stream_wall * 1e3:.2f}ms",
                   f"whole campaign ({n_hours} h)"])
    table.add_row(["serving load", f"{load_wall:.2f}s",
                   f"{load.queries} queries, hit rate "
                   f"{load.hit_rate:.4f}"])
    emit("bench_streaming", table.render())

    doc = {}
    if BENCH_PATH.exists():
        doc = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    doc["schema"] = "bench-campaign/v4"
    doc["streaming_detect"] = {
        "generated_by": "benchmarks/bench_streaming.py",
        "label": LABEL,
        "shape": {
            "seed": SEED, "scale": SCALE, "days": DAYS,
            "regions": [REGION], "budget_servers": BUDGET_SERVERS,
            "faults": "off",
        },
        "pairs": len(dataset.pairs()),
        "hours": n_hours,
        "observations": len(rows),
        "rescan_wall_s": round(rescan_wall, 6),
        "incremental_wall_s": round(stream_wall, 6),
        "incremental_per_hour_s": round(per_hour, 9),
        "speedup_incremental_vs_rescan": round(speedup, 1),
        "serving": {
            "consumers_per_hour": CONSUMERS_PER_HOUR,
            "hours": LOAD_HOURS,
            "queries": load.queries,
            "cache_misses": load.cache_misses,
            "hit_rate": round(load.hit_rate, 6),
            "wall_s": round(load_wall, 3),
            "queries_per_sec": round(load.queries / load_wall, 1),
            "mean_staleness_s": round(load.mean_staleness_s, 1),
        },
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n",
                          encoding="utf-8")

    assert speedup >= MIN_SPEEDUP, (
        f"incremental hourly update is only {speedup:.1f}x cheaper "
        f"than a full rescan (floor {MIN_SPEEDUP}x)")
