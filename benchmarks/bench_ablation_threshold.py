"""Ablation: sensitivity of the findings to the threshold H.

The paper picked H = 0.5 with the elbow method.  This ablation shows
what the headline numbers (congested s-days/s-hours, congested-server
counts) would have been at neighbouring thresholds, and that the
congested-server *set* is stable around the elbow (the design choice
is robust, not a knife's edge).
"""

import numpy as np

from repro.core.congestion import detect
from repro.report.tables import TextTable, format_percent

THRESHOLDS = (0.3, 0.4, 0.5, 0.6, 0.7)


def _evaluate(cache):
    dataset = cache.topology_dataset()
    out = {}
    for h in THRESHOLDS:
        report = detect(dataset, threshold=h)
        out[h] = (report.congested_day_fraction,
                  report.congested_hour_fraction,
                  set(report.congested_pairs()))
    return out


def _jaccard(a, b):
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)


def test_ablation_threshold(benchmark, cache, emit):
    results = benchmark.pedantic(_evaluate, args=(cache,),
                                 rounds=1, iterations=1)
    table = TextTable(
        ["H", "congested s-days", "congested s-hours",
         "congested servers", "overlap with H=0.5"],
        title="Ablation: threshold sensitivity")
    base_set = results[0.5][2]
    for h in THRESHOLDS:
        days, hours, pairs = results[h]
        table.add_row([f"{h:.1f}", format_percent(days),
                       format_percent(hours, 2), len(pairs),
                       f"{_jaccard(pairs, base_set):.2f}"])
    emit("ablation_threshold", table.render())

    # Monotonicity: a stricter threshold labels less.
    day_series = [results[h][0] for h in THRESHOLDS]
    assert all(a >= b - 1e-12 for a, b in zip(day_series, day_series[1:]))
    # Stability: neighbours of H=0.5 keep a similar congested set.
    assert _jaccard(results[0.4][2], base_set) > 0.5
    assert _jaccard(results[0.6][2], base_set) > 0.5
