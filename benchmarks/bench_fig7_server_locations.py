"""Fig. 7: locations of regions and selected servers."""

from repro.experiments import fig7


def test_fig7_server_locations(benchmark, cache, emit):
    result = benchmark.pedantic(fig7.run, args=(cache,),
                                rounds=1, iterations=1)
    emit("fig7", fig7.render(result))

    # Topology-based selections are U.S.-only (paper appendix A).
    for region in cache.scenario.us_regions:
        assert result.topology_points[region], region
        assert result.all_us(region), region

    # Differential selections span the globe.
    for region in cache.scenario.differential_regions:
        assert result.differential_points[region], region
    assert result.countries_spanned("europe-west1") >= 3
