"""The paper's headline findings, paper-vs-measured in one table.

Collapses the key quantitative claims from the abstract/introduction
into a single comparison the other benchmarks back in detail.
"""

import numpy as np

from repro.cloud.tiers import NetworkTier
from repro.core.analysis import performance_scatter, tier_comparison
from repro.core.congestion import detect, threshold_sweep
from repro.report.tables import TextTable


def _evaluate(cache):
    topo_ds = cache.topology_dataset()
    diff_ds = cache.differential_dataset()
    findings = {}

    hs, day_frac, hour_frac = threshold_sweep(
        topo_ds, np.array([0.5]))
    findings["s-days congested @H=0.5"] = (
        "11% - 30%", f"{day_frac[0] * 100:.1f}%")
    findings["s-hours congested @H=0.5"] = (
        "1.3% - 3%", f"{hour_frac[0] * 100:.2f}%")

    report = detect(topo_ds)
    isp_pairs = [p for p in report.pair_hours
                 if topo_ds.server_meta(p[1]).business_type == "isp"]
    congested_isp = [p for p in isp_pairs
                     if report.is_congested_server(p)]
    frac = len(congested_isp) / len(isp_pairs) if isp_pairs else 0.0
    findings["ISP servers congested >10% of days"] = (
        "30% - 70%", f"{frac * 100:.1f}%")

    points = performance_scatter(topo_ds, min_samples=48)
    p95 = np.array([p.p95_download_mbps for p in points])
    in_band = ((p95 >= 200) & (p95 <= 600)).mean()
    findings["servers with p95 download 200-600 Mbps"] = (
        "~80%", f"{in_band * 100:.1f}%")
    findings["max p95 download (1 Gbps cap)"] = (
        "< 1000 Mbps", f"{p95.max():.0f} Mbps")

    uploads = []
    for pair in topo_ds.pairs():
        uploads.append(np.percentile(
            topo_ds.table.series(pair)["upload"], 95))
    findings["p95 upload at the 100 Mbps tc cap"] = (
        "~100 Mbps", f"{np.median(uploads):.0f} Mbps (median)")

    comparison = tier_comparison(diff_ds, "europe-west1")
    deltas = comparison.all_deltas("download")
    findings["standard tier faster downloads"] = (
        "generally (>50%)", f"{(deltas < 0).mean() * 100:.1f}%")
    lossy = 0
    for pair in diff_ds.pairs(region="europe-west1",
                              tier=NetworkTier.PREMIUM):
        if diff_ds.table.series(pair)["loss_down"].mean() > 0.10:
            lossy += 1
    findings["premium targets with >10% loss"] = ("8", str(lossy))
    return findings


def test_headline_findings(benchmark, cache, emit):
    findings = benchmark.pedantic(_evaluate, args=(cache,),
                                  rounds=1, iterations=1)
    table = TextTable(["finding", "paper", "measured"],
                      title="Headline findings: paper vs this "
                            "reproduction")
    for name, (paper, measured) in findings.items():
        table.add_row([name, paper, measured])
    emit("headline_findings", table.render())

    # Hard shape assertions on the most load-bearing claims.
    day = float(findings["s-days congested @H=0.5"][1].rstrip("%"))
    hour = float(findings["s-hours congested @H=0.5"][1].rstrip("%"))
    assert 5.0 <= day <= 45.0
    assert 0.5 <= hour <= 6.0
    std_faster = float(
        findings["standard tier faster downloads"][1].rstrip("%"))
    assert std_faster >= 50.0
    assert int(findings["premium targets with >10% loss"][1]) >= 3
