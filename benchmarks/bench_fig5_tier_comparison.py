"""Fig. 5: premium vs standard tier relative differences (europe-west1)."""

import numpy as np

from repro.experiments import fig5


def test_fig5_tier_comparison(benchmark, cache, emit):
    result = benchmark.pedantic(fig5.run, args=(cache,),
                                rounds=1, iterations=1)
    emit("fig5", fig5.render(result))

    downloads = result.all_deltas("download")
    uploads = result.all_deltas("upload")
    assert downloads.size > 200 and uploads.size > 200

    # Paper: standard-tier throughput is generally higher (the
    # download delta CDF skews negative).
    assert result.standard_faster_fraction("download") >= 0.5
    assert float(np.median(downloads)) <= 0.05

    # Paper: several servers see the standard tier faster in >=87% of
    # matched hours.
    assert len(result.consistently_standard_faster()) >= 2

    # Upload is pinned near the 100 Mbps shaping in both tiers, so the
    # relative differences stay modest.
    assert result.modest_delta_fraction("upload") >= 0.85

    # Paper (Fig. 4b/5a): the premium tier's hourly download variance
    # is the smaller of the two.
    dataset = cache.differential_dataset()
    from repro.cloud.tiers import NetworkTier
    prem_std = np.median([
        np.std(dataset.table.series(p)["download"])
        for p in dataset.pairs(region="europe-west1",
                               tier=NetworkTier.PREMIUM)])
    std_std = np.median([
        np.std(dataset.table.series(p)["download"])
        for p in dataset.pairs(region="europe-west1",
                               tier=NetworkTier.STANDARD)])
    assert prem_std <= std_std * 1.1
