"""Observability overhead: the same campaign with repro.obs off vs on.

Every hot path in the stack (TCP transfers, speed tests, route cache,
engine events) carries permanent instrumentation that collapses to
near-free no-ops while :mod:`repro.obs` is disabled.  This bench times
one fixed campaign three ways - obs off, obs on, and obs on while also
exporting the profile artifacts - and holds the enabled run under a
1.5x budget so the "instrumentation is cheap enough to leave in"
promise stays enforced rather than assumed.

Wall-clock timing is inherently nondeterministic; this file lives in
``benchmarks/`` (not ``src/repro``) exactly so the lint determinism
rules do not apply to it.
"""

import time

import repro.obs as obs
from repro.core.export import dataset_digest
from repro.obs.exporters import (metrics_to_jsonlines,
                                 metrics_to_prometheus,
                                 spans_to_jsonlines)
from repro.experiments.scenario import build_scenario
from repro.report.tables import TextTable
from repro.simclock import CAMPAIGN_START

#: Small fixed shape: the bench compares obs-on against obs-off on
#: identical work, so it only needs to be stable, not paper-scale.
SEED = 11
SCALE = 0.1
DAYS = 2
N_SERVERS = 10
MAX_OVERHEAD = 1.5


def _run_once(enabled):
    if enabled:
        obs.enable(capacity=200_000)
    try:
        scenario = build_scenario(seed=SEED, scale=SCALE, stories=False)
        clasp = scenario.clasp
        ids = [s.server_id
               for s in scenario.catalog.servers(country="US")[:N_SERVERS]]
        plan = clasp.orchestrator.deploy_topology(
            "us-west1", ids, float(CAMPAIGN_START))
        start = time.perf_counter()
        dataset = clasp.run_campaign([plan], days=DAYS)
        elapsed = time.perf_counter() - start
        exports = None
        if enabled:
            spans = obs.tracer().finished()
            snapshot = obs.snapshot()
            export_start = time.perf_counter()
            exports = (spans_to_jsonlines(spans)
                       + metrics_to_jsonlines(snapshot)
                       + metrics_to_prometheus(snapshot))
            elapsed_export = time.perf_counter() - export_start
            return dataset, elapsed, elapsed + elapsed_export, exports
        return dataset, elapsed, elapsed, exports
    finally:
        if enabled:
            obs.disable()


def test_bench_obs_overhead(emit):
    variants = [
        ("obs disabled (no-op helpers)", False),
        ("obs enabled (spans + metrics)", True),
    ]
    rows = []
    baseline = None
    digest = None
    for label, enabled in variants:
        dataset, elapsed, with_export, exports = _run_once(enabled)
        if digest is None:
            digest = dataset_digest(dataset)
        # Instrumentation must observe the campaign, never perturb it.
        assert dataset_digest(dataset) == digest
        if baseline is None:
            baseline = elapsed
        rows.append((label, elapsed, elapsed / baseline))
        if exports is not None:
            rows.append(("  + export jsonl/prom", with_export,
                         with_export / baseline))

    table = TextTable(
        ["variant", "seconds", "vs disabled"],
        title=f"repro.obs overhead: {DAYS} days x {N_SERVERS} servers "
              f"({dataset.completed_tests} tests)")
    for label, elapsed, ratio in rows:
        table.add_row([label, f"{elapsed:.2f}", f"{ratio:.2f}x"])
    emit("bench_obs_overhead", table.render())

    enabled_ratio = rows[1][2]
    assert enabled_ratio < MAX_OVERHEAD, (
        f"obs-enabled campaign ran {enabled_ratio:.2f}x the disabled "
        f"baseline (budget {MAX_OVERHEAD}x)")
