"""Alert-evaluation overhead: the daemon collector with vs without rules.

The alerting layer rides the campaign's hour boundaries - each
watermark advance snapshots the metrics registry into the history
TSDB and evaluates the rule set against it.  This bench runs one
fixed campaign twice through :meth:`~repro.core.clasp.Clasp.collector`
- an empty rule set vs the shipped :func:`~repro.alerts.default_rules`
- and holds the ruled run under a 1.1x budget, so "alerting is cheap
enough to leave on" stays enforced rather than assumed.  The point
lands in ``BENCH_campaign.json`` under the ``alerts_eval`` key
(schema ``bench-campaign/v4``).

Wall-clock timing is inherently nondeterministic; this file lives in
``benchmarks/`` (not ``src/repro``) exactly so the lint determinism
rules do not apply to it.
"""

import json
import pathlib
import time

from repro.alerts import default_rules
from repro.core.export import dataset_digest
from repro.experiments.scenario import build_scenario
from repro.report.tables import TextTable
from repro.simclock import CAMPAIGN_START

#: Small fixed shape (same as bench_obs_overhead): the bench compares
#: ruled against rule-less on identical work, so it only needs to be
#: stable, not paper-scale.
SEED = 11
SCALE = 0.1
DAYS = 2
N_SERVERS = 10
MAX_OVERHEAD = 1.1
#: Per-variant best-of runs: a 1.1x budget needs jitter suppression.
BEST_OF = 3

BENCH_PATH = (pathlib.Path(__file__).resolve().parent.parent
              / "BENCH_campaign.json")
SCHEMA = "bench-campaign/v4"
LABEL = "alerts-v1 (rule evaluation riding the collector)"


def _run_once(rules):
    scenario = build_scenario(seed=SEED, scale=SCALE, stories=False)
    clasp = scenario.clasp
    ids = [s.server_id
           for s in scenario.catalog.servers(country="US")[:N_SERVERS]]
    plan = clasp.orchestrator.deploy_topology(
        "us-west1", ids, float(CAMPAIGN_START))
    collector, observer = clasp.collector(rules=rules)
    start = time.perf_counter()
    dataset = clasp.run_campaign([plan], days=DAYS, observers=[observer])
    elapsed = time.perf_counter() - start
    collector.finalize()
    return dataset, collector, elapsed


def _best_of(rules):
    best = float("inf")
    dataset = collector = None
    for _ in range(BEST_OF):
        run_dataset, run_collector, elapsed = _run_once(rules)
        if elapsed < best:
            best, dataset, collector = elapsed, run_dataset, run_collector
    return dataset, collector, best


def test_bench_alerts_overhead(emit):
    base_dataset, _base, base_wall = _best_of(())
    ruled_dataset, collector, ruled_wall = _best_of(default_rules())
    # Alerting must observe the campaign, never perturb it.
    assert dataset_digest(ruled_dataset) == dataset_digest(base_dataset)

    ratio = ruled_wall / base_wall
    evaluations = int(collector.registry.snapshot()["counters"].get(
        "alerts.evaluations", 0))
    notifications = len(collector.evaluator.notifications)

    table = TextTable(
        ["variant", "seconds", "vs no rules"],
        title=f"repro.alerts overhead: {DAYS} days x {N_SERVERS} servers "
              f"({ruled_dataset.completed_tests} tests, best of "
              f"{BEST_OF})")
    table.add_row(["collector, no rules", f"{base_wall:.2f}", "1.00x"])
    table.add_row([f"collector + {len(default_rules())} default rules",
                   f"{ruled_wall:.2f}", f"{ratio:.2f}x"])
    table.add_row([f"  ({evaluations} rule evaluations, "
                   f"{notifications} notifications)", "-", "-"])
    emit("bench_alerts", table.render())

    doc = {}
    if BENCH_PATH.exists():
        doc = json.loads(BENCH_PATH.read_text(encoding="utf-8"))
    doc["schema"] = SCHEMA
    doc["alerts_eval"] = {
        "generated_by": "benchmarks/bench_alerts.py",
        "label": LABEL,
        "shape": {
            "seed": SEED, "scale": SCALE, "days": DAYS,
            "regions": ["us-west1"], "budget_servers": N_SERVERS,
            "faults": "off",
        },
        "rules": len(default_rules()),
        "evaluations": evaluations,
        "notifications": notifications,
        "base_wall_s": round(base_wall, 3),
        "ruled_wall_s": round(ruled_wall, 3),
        "overhead_ratio": round(ratio, 3),
        "max_overhead": MAX_OVERHEAD,
    }
    BENCH_PATH.write_text(json.dumps(doc, indent=2) + "\n",
                          encoding="utf-8")

    assert ratio < MAX_OVERHEAD, (
        f"rule evaluation ran {ratio:.2f}x the rule-less collector "
        f"baseline (budget {MAX_OVERHEAD}x)")
