"""Ablation: topology-based selection vs naive alternatives.

The paper's topology-based method picks one server per interconnection
so a fixed measurement budget covers as many distinct interdomain
links as possible.  This ablation measures link coverage per measured
server against (a) random selection and (b) lowest-latency-first
selection, at the same budget.
"""

import numpy as np

from repro.report.tables import TextTable, format_percent
from repro.rng import SeedTree


def _coverage(selection, server_ids):
    return selection.links_covered_by(server_ids)


def _evaluate(cache, region="us-west1"):
    selection = cache.topology_selection(region)
    budget = min(len(selection.selected), 34)  # two VMs' worth
    topo_ids = selection.selected_ids(budget=budget)

    traced = [sid for sid, far in selection.server_links.items()
              if far is not None]
    rng = SeedTree(1234).generator("selection-ablation")
    random_cov = []
    for _ in range(5):
        sample = [traced[int(i)] for i in
                  rng.choice(len(traced), size=budget, replace=False)]
        random_cov.append(_coverage(selection, sample))

    # Lowest-latency-first ignores interconnection diversity entirely:
    # it clusters into the few interconnects closest to the region.
    by_rtt = sorted(traced, key=lambda sid: selection.server_rtts.get(
        sid, float("inf")))[:budget]

    return {
        "budget": budget,
        "total_links": selection.n_links_traversed,
        "topology": _coverage(selection, topo_ids),
        "random_mean": float(np.mean(random_cov)),
        "latency_first": _coverage(selection, by_rtt),
    }


def test_ablation_selection(benchmark, cache, emit):
    result = benchmark.pedantic(_evaluate, args=(cache,),
                                rounds=1, iterations=1)
    table = TextTable(
        ["strategy", "servers", "links covered", "coverage"],
        title="Ablation: server-selection strategies (us-west1, equal "
              "budget)")
    for name, covered in (("topology-based", result["topology"]),
                          ("random", result["random_mean"]),
                          ("lowest-latency-first",
                           result["latency_first"])):
        table.add_row([name, result["budget"], f"{covered:.1f}",
                       format_percent(covered / result["total_links"])])
    emit("ablation_selection", table.render())

    # One-server-per-link selection must dominate both baselines.
    assert result["topology"] >= result["random_mean"]
    assert result["topology"] >= result["latency_first"]
    # And the margin over random should be visible, not epsilon.
    assert result["topology"] >= result["random_mean"] * 1.1
