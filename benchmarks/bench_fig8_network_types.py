"""Fig. 8: congested / non-congested servers by business type."""

from repro.experiments import fig8


def test_fig8_network_types(benchmark, cache, emit):
    result = benchmark.pedantic(fig8.run, args=(cache,),
                                rounds=1, iterations=1)
    emit("fig8", fig8.render(result))

    # Every U.S. region has a topology summary dominated by ISPs.
    for region in cache.scenario.us_regions:
        summary = result.summaries[(region, "topology")]
        assert summary
        isp_total = summary.get("isp", (0, 0))[1]
        others = sum(t for b, (_c, t) in summary.items() if b != "isp")
        assert isp_total >= others, f"{region}: ISPs should dominate"

    # Paper: 30-77% of topology-selected ISP servers show congestion.
    lo, hi = result.isp_fraction_range("topology")
    assert 0.10 <= lo and hi <= 0.85
