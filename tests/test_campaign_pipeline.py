"""Campaign runner, dataset, and the analysis pipeline."""

import numpy as np
import pytest

from repro.cloud.tiers import NetworkTier
from repro.core.campaign import CampaignConfig, CampaignRunner
from repro.core.pipeline import AnalysisPipeline
from repro.simclock import CAMPAIGN_START
from repro.units import DAY, HOUR


@pytest.fixture(scope="module")
def campaign_rig(small_scenario, deploy_us_plan):
    """One deployed region + a 2-day campaign, shared by the tests."""
    clasp = small_scenario.clasp
    plan = deploy_us_plan("us-east4", 12)
    cost_before = clasp.platform.costs.total_usd
    dataset = clasp.run_campaign([plan], days=2)
    return small_scenario, plan, dataset, cost_before


def test_campaign_config_validation():
    with pytest.raises(ValueError):
        CampaignConfig(days=0)
    with pytest.raises(ValueError):
        CampaignConfig(days=1, start_ts=float(CAMPAIGN_START) + 7)
    config = CampaignConfig(days=3)
    assert config.end_ts == config.start_ts + 3 * DAY
    assert config.n_hours == 72


def test_campaign_produces_hourly_records(campaign_rig):
    scenario, plan, dataset, _cost = campaign_rig
    n_servers = len(plan.server_ids)
    expected = n_servers * 48
    # A few tests may fail outright; nearly all must land.
    assert dataset.completed_tests >= expected * 0.99
    assert dataset.completed_tests + dataset.failed_tests == expected
    assert len(dataset) == dataset.completed_tests


def test_campaign_metadata_registered(campaign_rig):
    scenario, plan, dataset, _cost = campaign_rig
    for server_id in plan.server_ids:
        meta = dataset.server_meta(server_id)
        server = scenario.catalog.get(server_id)
        assert meta.asn == server.asn
        assert meta.city_key == server.city_key
    with pytest.raises(KeyError):
        dataset.server_meta("missing-id")


def test_campaign_series_shape(campaign_rig):
    scenario, plan, dataset, _cost = campaign_rig
    pair = dataset.pairs(region="us-east4")[0]
    series = dataset.table.series(pair)
    assert series["ts"].size >= 46
    assert np.all(np.diff(series["ts"]) > 0)
    # One test per hour per server.
    hours = (series["ts"] // HOUR).astype(int)
    assert len(np.unique(hours)) == hours.size


def test_campaign_bills_usage(campaign_rig):
    scenario, plan, dataset, cost_before = campaign_rig
    costs = scenario.clasp.platform.costs.spend_by_category()
    assert costs["vm_hours"] > 0
    assert costs["egress"] > 0
    assert scenario.clasp.total_cost_usd() > cost_before


def test_campaign_uploads_artifacts(campaign_rig):
    _scenario, plan, _dataset, _cost = campaign_rig
    # One artefact bundle per VM-hour.
    assert len(plan.bucket) == len(plan.vms) * 48
    assert plan.bucket.total_bytes > 0


def test_dataset_pair_filters(campaign_rig):
    _scenario, plan, dataset, _cost = campaign_rig
    assert dataset.regions() == ["us-east4"]
    prem = dataset.pairs(tier=NetworkTier.PREMIUM)
    std = dataset.pairs(tier=NetworkTier.STANDARD)
    assert len(prem) == len(plan.server_ids)
    assert std == []
    assert dataset.n_days == 2


def test_pipeline_flow_level_processing(campaign_rig):
    scenario, plan, _dataset, _cost = campaign_rig
    clasp = scenario.clasp
    vm = plan.vms[0]
    server = scenario.catalog.get(plan.servers_of(vm.name)[0])
    from repro.speedtest.browser import HeadlessBrowser
    browser = HeadlessBrowser(clasp.engine)
    artefacts = browser.run_test(vm, server,
                                 float(CAMPAIGN_START) + 50 * HOUR)
    pipeline = AnalysisPipeline(clasp.platform, scenario.catalog,
                                clasp.engine.config,
                                seeds=scenario.seeds.child("pl"))
    processed = pipeline.process(vm, artefacts, "us-east4")
    record = processed.record
    assert record.server_id == server.server_id
    assert record.download_mbps == artefacts.result.download_mbps
    # Estimated RTT from flows sits near the reported latency.
    assert processed.estimated_rtt_ms == pytest.approx(
        artefacts.result.latency_ms, rel=0.5)
    assert len(processed.download_flows) == clasp.engine.config.n_flows
    assert 0.0 <= processed.estimated_download_loss < 1.0
    # The record's loss comes from the estimator, not simulator truth.
    assert record.download_loss_rate == processed.estimated_download_loss
