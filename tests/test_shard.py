"""Shard-equivalence harness: sharded/vectorized runs are byte-exact.

Three layers of proof that :mod:`repro.shard` changes *how fast* the
campaign runs and nothing else:

* **Golden digests** - the committed ``tests/golden/digests.json``
  digests reproduce for every ``shards`` x ``batch`` x ``faults``
  combination of the pinned campaign shape (the same file the inline
  golden tests pin, so inline and sharded runs are transitively equal).
* **Event streams** - a multi-lane, two-region campaign under each
  fault plan emits the *identical* event sequence (every payload, in
  order) through sharded, vectorized, and forked execution.
* **Vector oracles** - every numpy twin in :mod:`repro.shard.vectcp`
  matches its scalar counterpart elementwise with 0 ULP drift over
  dense random grids, including the link-flap hook interaction.

Plus unit tests for the ``(hour, lane, seq)`` merge total order and
the batch planner's refuse-to-desync strictness.
"""

import json
import pathlib

import numpy as np
import pytest

import repro.obs as obs
from repro.core.export import dataset_digest
from repro.core.scheduler import TestSlot as ScheduledSlot
from repro.engine.bus import EventBus
from repro.engine.events import TestLost as LostEvent
from repro.engine.events import event_payload
from repro.engine.lanes import CampaignEngine, Lane
from repro.errors import ValidationError
from repro.experiments.scenario import build_scenario
from repro.faults import FaultPlan
from repro.netsim.linkstate import LinkStateEvaluator
from repro.netsim.tcp import multiflow_throughput_mbps, pftk_throughput_mbps
from repro.netsim.topology import LinkKind
from repro.netsim.traffic import DiurnalProfile
from repro.shard import (BatchLaneExecutor, StampedEvent,
                         batch_flows_for_rtt, batch_loss_rate,
                         batch_mean_utilization,
                         batch_mean_utilization_grid,
                         batch_multiflow_throughput_mbps, batch_observe,
                         batch_pftk_throughput_mbps, batch_queue_delay_ms,
                         batch_residual_mbps, batch_utilization,
                         batch_weekend_mask, merge_streams,
                         partition_lanes, replay_events)
from repro.simclock import CAMPAIGN_START, is_weekend
from repro.speedtest.protocol import SpeedTestConfig
from repro.units import DAY, HOUR

GOLDEN = json.loads((pathlib.Path(__file__).parent / "golden"
                     / "digests.json").read_text(encoding="utf-8"))

# Keep in sync with scripts/regen_golden.py / tests/test_golden.py.
SEED, SCALE, REGION, BUDGET_SERVERS, DAYS = 11, 0.05, "us-west1", 8, 2


def _golden_campaign(faults, shards, batch):
    scenario = build_scenario(seed=SEED, scale=SCALE, faults=faults)
    clasp = scenario.clasp
    selection = clasp.select_topology_servers(REGION)
    plan = clasp.deploy_topology(REGION, selection,
                                 budget_servers=BUDGET_SERVERS)
    return clasp.run_campaign([plan], days=DAYS, shards=shards, batch=batch)


# ----------------------------------------------------------------------
# golden digests: every execution mode reproduces the committed bytes


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("batch", [False, True])
def test_golden_digest_faults_off(shards, batch):
    dataset = _golden_campaign(None, shards, batch)
    assert dataset_digest(dataset) == GOLDEN["faults_off"]


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("batch", [False, True])
def test_golden_digest_faults_default(shards, batch):
    dataset = _golden_campaign(FaultPlan.default(), shards, batch)
    assert dataset_digest(dataset) == GOLDEN["faults_default"]


def test_batch_run_with_obs_enabled_matches_golden():
    """Instrumentation on the batch path observes without perturbing."""
    obs.enable()
    try:
        dataset = _golden_campaign(None, shards=1, batch=True)
        assert dataset_digest(dataset) == GOLDEN["faults_off"]
        counters = obs.snapshot()["counters"]
        assert counters["shard.hours_planned"] == DAYS * 24
        assert counters["speedtest.tests"] == dataset.completed_tests
    finally:
        obs.disable()


# ----------------------------------------------------------------------
# event streams: multi-lane, two-region campaigns under each fault plan


class _StreamCollector:
    """Bus subscriber recording every event as its payload dict."""

    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append((event.kind, event_payload(event)))


MATRIX_REGIONS = ("us-west1", "us-east1")
_FAULT_PLANS = {"off": lambda: None, "default": FaultPlan.default,
                "heavy": FaultPlan.heavy}


def _matrix_campaign(faults, shards, batch, processes=False):
    scenario = build_scenario(seed=7, scale=SCALE, faults=faults)
    clasp = scenario.clasp
    plans = [clasp.deploy_topology(region,
                                   clasp.select_topology_servers(region),
                                   budget_servers=20)
             for region in MATRIX_REGIONS]
    assert sum(len(plan.assignments) for plan in plans) >= 4
    collector = _StreamCollector()
    dataset = clasp.run_campaign(plans, days=1, observers=[collector],
                                 shards=shards, batch=batch,
                                 shard_processes=processes)
    return dataset, collector.events, clasp


@pytest.fixture(scope="module")
def matrix_baseline():
    """Inline scalar event streams + digests, one per fault plan."""
    out = {}
    for key, make_plan in _FAULT_PLANS.items():
        dataset, events, clasp = _matrix_campaign(make_plan(), 1, False)
        out[key] = (dataset_digest(dataset), events, dataset, clasp)
    # The heavy plan must actually exercise the fault interactions the
    # sharded paths have to replicate (preemptions, truncations).
    heavy = out["heavy"][3].fault_injector.summary()
    assert heavy["vm-preemption"] > 0
    assert heavy["truncated-transfer"] > 0
    assert out["heavy"][2].retried_tests > 0
    return out


# shards=2 keeps each region's lanes together (region partition);
# shards=4 > |regions| falls back to lane round-robin - both rules run.
@pytest.mark.parametrize("faults_key", ["off", "default", "heavy"])
@pytest.mark.parametrize("shards,batch", [(2, False), (4, True)])
def test_sharded_event_stream_matches_inline(matrix_baseline, faults_key,
                                             shards, batch):
    digest, events, _dataset, _clasp = matrix_baseline[faults_key]
    dataset, got_events, _ = _matrix_campaign(
        _FAULT_PLANS[faults_key](), shards, batch)
    assert got_events == events
    assert dataset_digest(dataset) == digest


def test_forked_workers_match_inline(matrix_baseline):
    """processes=True (fork): same streams, same digest, heavy faults."""
    digest, events, _dataset, _clasp = matrix_baseline["heavy"]
    dataset, got_events, _ = _matrix_campaign(FaultPlan.heavy(), 2, True,
                                              processes=True)
    assert got_events == events
    assert dataset_digest(dataset) == digest


# ----------------------------------------------------------------------
# merge total order


def _stamped(hour, lane, seq, ts=0.0):
    return StampedEvent(hour=hour, lane=lane, seq=seq,
                        event=LostEvent(ts=ts, region="r",
                                            vm_name=f"vm{lane}",
                                            server_id="s",
                                            reason="speedtest"))


def test_merge_orders_same_timestamp_by_lane_then_seq():
    """Crafted ties: identical event timestamps, distinct stamps."""
    shard_a = [_stamped(0, 0, 0, ts=7.0), _stamped(0, 0, 1, ts=7.0),
               _stamped(0, 3, 0, ts=7.0)]
    shard_b = [_stamped(0, 1, 0, ts=7.0), _stamped(0, 1, 1, ts=7.0)]
    merged = merge_streams([shard_a, shard_b])
    assert [(e.lane, e.seq) for e in merged] == [
        (0, 0), (0, 1), (1, 0), (1, 1), (3, 0)]


def test_merge_orders_hours_before_lanes():
    shard_a = [_stamped(0, 5, 0), _stamped(1, 5, 0)]
    shard_b = [_stamped(0, 1, 0), _stamped(1, 1, 0)]
    merged = merge_streams([shard_a, shard_b])
    assert [(e.hour, e.lane) for e in merged] == [
        (0, 1), (0, 5), (1, 1), (1, 5)]


def test_merge_is_invariant_to_partitioning():
    events = [_stamped(h, lane, seq) for h in range(3)
              for lane in range(4) for seq in range(2)]
    whole = merge_streams([events])
    split = merge_streams([events[0::3], events[1::3], events[2::3]])
    assert [e.sort_key for e in split] == [e.sort_key for e in whole]


def test_merge_rejects_duplicate_stamps_across_shards():
    with pytest.raises(ValidationError, match="duplicate event stamp"):
        merge_streams([[_stamped(0, 0, 0)], [_stamped(0, 0, 0)]])


def test_merge_rejects_unsorted_shard_stream():
    with pytest.raises(ValidationError, match="not strictly ordered"):
        merge_streams([[_stamped(0, 1, 0), _stamped(0, 0, 0)]])


def test_replay_synthesizes_engine_framing():
    merged = [_stamped(0, 0, 0), _stamped(0, 0, 1), _stamped(2, 0, 0)]
    bus = EventBus()
    collector = _StreamCollector()
    bus.subscribe(collector)
    replay_events(bus, merged, start_ts=0.0, n_hours=3)
    kinds = [kind for kind, _payload in collector.events]
    assert kinds == ["hour-started", "test-lost", "test-lost",
                     "hour-started", "hour-started", "test-lost",
                     "campaign-finished"]
    hour_starts = [payload for kind, payload in collector.events
                   if kind == "hour-started"]
    assert [p["hour_index"] for p in hour_starts] == [0, 1, 2]
    assert [p["ts"] for p in hour_starts] == [0.0, HOUR, 2 * HOUR]
    finished = collector.events[-1][1]
    assert finished["ts"] == 3 * HOUR and finished["n_hours"] == 3


def test_replay_rejects_events_beyond_final_hour():
    with pytest.raises(ValidationError, match="beyond the campaign"):
        replay_events(EventBus(), [_stamped(5, 0, 0)], start_ts=0.0,
                      n_hours=2)


# ----------------------------------------------------------------------
# lane partitioning


def _lane(name, region):
    return Lane(name=name, region=region, schedule=None, vm=None,
                ready_ts=0.0)


def test_partition_keeps_regions_together():
    lanes = [_lane("a0", "us-west1"), _lane("b0", "us-east1"),
             _lane("a1", "us-west1"), _lane("c0", "eu-west1"),
             _lane("b1", "us-east1")]
    parts = partition_lanes(lanes, 3)
    assert [[lane.name for lane in part] for part in parts] == [
        ["a0", "a1"], ["b0", "b1"], ["c0"]]


def test_partition_round_robins_lanes_when_regions_are_few():
    lanes = [_lane(f"a{i}", "us-west1") for i in range(5)]
    parts = partition_lanes(lanes, 2)
    assert [[lane.name for lane in part] for part in parts] == [
        ["a0", "a2", "a4"], ["a1", "a3"]]


def test_partition_drops_empty_shards_and_validates():
    assert len(partition_lanes([_lane("a0", "r")], 8)) == 1
    with pytest.raises(ValidationError):
        partition_lanes([], 0)


# ----------------------------------------------------------------------
# batch planner strictness


def test_batch_planner_refuses_unplanned_slot():
    """A planned hour must cover every stepped slot - a silent scalar
    fallback would consume the lane's RNG stream twice and desync
    every later draw, so the planner raises instead."""
    scenario = build_scenario(seed=SEED, scale=SCALE)
    clasp = scenario.clasp
    plan = clasp.deploy_topology(REGION,
                                 clasp.select_topology_servers(REGION),
                                 budget_servers=BUDGET_SERVERS)
    runner = clasp.runner
    start = float(CAMPAIGN_START)
    lanes = runner.build_lanes([plan], start)
    bus = EventBus()
    executor = BatchLaneExecutor(runner, bus)
    engine = CampaignEngine(lanes=lanes, stepper=executor, bus=bus,
                            start_ts=start, n_hours=1)
    executor.attach_engine(engine)
    executor._plan_hour(start, 0)
    rogue = ScheduledSlot(ts=start, vm_name=lanes[0].vm.name,
                     server_id="nope", slot_index=9999)
    with pytest.raises(ValidationError, match="no outcome"):
        executor._run_slot_test(lanes[0], rogue)


# ----------------------------------------------------------------------
# vector oracles: 0 ULP drift against the scalar hot path


def _assert_zero_ulp(batch_values, scalar_fn, *arg_arrays):
    __tracebackhide__ = True
    for i in range(len(batch_values)):
        scalar = scalar_fn(*(a[i] for a in arg_arrays))
        assert batch_values[i] == scalar, (
            f"element {i}: batch {batch_values[i]!r} != scalar {scalar!r} "
            f"for args {[a[i] for a in arg_arrays]!r}")


def test_batch_pftk_matches_scalar():
    rng = np.random.default_rng(1)
    rtt = rng.uniform(0.2, 400.0, 2000)
    loss = np.concatenate([np.zeros(100), np.full(100, 1e-9),
                           np.full(100, 1e-7),
                           rng.uniform(0.0, 0.95, 1700)])
    out = batch_pftk_throughput_mbps(rtt, loss)
    _assert_zero_ulp(out, lambda r, p: pftk_throughput_mbps(float(r),
                                                            float(p)),
                     rtt, loss)


def test_batch_multiflow_matches_scalar():
    rng = np.random.default_rng(2)
    n = 2000
    rtt = rng.uniform(0.2, 400.0, n)
    loss = rng.uniform(0.0, 0.6, n)
    flows = rng.integers(1, 129, n)
    avail = rng.uniform(0.5, 20000.0, n)
    out = batch_multiflow_throughput_mbps(rtt, loss, flows, avail)
    _assert_zero_ulp(
        out,
        lambda r, p, f, a: multiflow_throughput_mbps(
            float(r), float(p), int(f), float(a)),
        rtt, loss, flows, avail)


def test_batch_flows_for_rtt_matches_scalar():
    config = SpeedTestConfig()
    rng = np.random.default_rng(3)
    # Include sub-scale RTTs (scale clamps to 1) and exact half-integer
    # products, which banker's rounding resolves to even.
    rtt = np.concatenate([rng.uniform(0.2, 300.0, 1000),
                          np.array([1.0, 12.5, 25.0, 25.0 * 1.5 / 24.0]),
                          config.flow_scale_rtt_ms
                          * (np.arange(1, 50) + 0.5) / config.n_flows])
    out = batch_flows_for_rtt(config, rtt)
    _assert_zero_ulp(out, lambda r: config.flows_for_rtt(float(r)), rtt)


def _utilization_grid():
    rng = np.random.default_rng(4)
    return np.concatenate([rng.uniform(0.0, 1.4, 1500),
                           np.array([0.0, 0.5, 0.92, 0.995, 1.0, 1.25])])


@pytest.mark.parametrize("kind", list(LinkKind))
def test_batch_loss_and_queue_match_scalar(kind):
    u = _utilization_grid()
    _assert_zero_ulp(batch_loss_rate(u, kind),
                     lambda x: LinkStateEvaluator.loss_rate(float(x), kind),
                     u)
    _assert_zero_ulp(batch_queue_delay_ms(u, kind),
                     lambda x: LinkStateEvaluator.queue_delay_ms(float(x),
                                                                 kind),
                     u)


def test_batch_residual_matches_scalar():
    u = _utilization_grid()
    for capacity in (40.0, 1000.0, 12345.6):
        _assert_zero_ulp(
            batch_residual_mbps(capacity, u),
            lambda x: LinkStateEvaluator.residual_mbps(capacity, float(x)),
            u)


@pytest.mark.parametrize("profile", [
    DiurnalProfile.quiet(),
    DiurnalProfile.congested_evening(utc_offset_hours=-8.0),
    DiurnalProfile.congested_daytime(utc_offset_hours=5.5),
])
def test_batch_mean_utilization_matches_scalar(profile):
    rng = np.random.default_rng(5)
    start = float(CAMPAIGN_START)
    # Dense two-week sweep plus timestamps within one second of local
    # midnight, which force the per-element weekend fallback.
    midnights = (start + np.arange(1, 8) * DAY
                 - profile.utc_offset_hours * HOUR)
    ts = np.concatenate([
        start + rng.uniform(0.0, 14 * DAY, 2000),
        midnights - 0.5, midnights, midnights + 0.5,
    ])
    _assert_zero_ulp(batch_mean_utilization(profile, ts),
                     lambda t: profile.mean_utilization(float(t)), ts)


def _mixed_profiles():
    return (DiurnalProfile.quiet(),
            DiurnalProfile.congested_evening(utc_offset_hours=-8.0),
            DiurnalProfile.congested_daytime(utc_offset_hours=5.5),
            DiurnalProfile(base=0.3, bumps=()))  # bumpless: all padding


def test_batch_mean_utilization_grid_matches_scalar():
    """The flat mixed-profile batch (the planner's hot path): every
    element carries its own profile parameters, bump columns padded."""
    profiles = _mixed_profiles()
    rng = np.random.default_rng(8)
    start = float(CAMPAIGN_START)
    ts_parts = [start + rng.uniform(0.0, 14 * DAY, 600)]
    for profile in profiles:
        midnights = (start + np.arange(1, 4) * DAY
                     - profile.utc_offset_hours * HOUR)
        ts_parts.extend([midnights - 0.5, midnights, midnights + 0.5])
    ts = np.concatenate(ts_parts)
    n = ts.shape[0]
    chosen = [profiles[i % len(profiles)] for i in range(n)]
    n_bumps = max(len(p.bumps) for p in profiles)
    pad = (0.0, 1.0, 0.0)
    grid = np.array([
        (p.base, p.weekend_factor, p.utc_offset_hours)
        + sum(((b.center_hour, b.width_hours, b.amplitude)
               for b in p.bumps), ())
        + pad * (n_bumps - len(p.bumps))
        for p in chosen])
    out = batch_mean_utilization_grid(ts, grid[:, 0], grid[:, 1],
                                      grid[:, 2], grid[:, 3::3],
                                      grid[:, 4::3], grid[:, 5::3])
    for i in range(n):
        assert out[i] == chosen[i].mean_utilization(float(ts[i]))


def test_batch_weekend_mask_matches_scalar():
    rng = np.random.default_rng(9)
    start = float(CAMPAIGN_START)
    offsets = np.array([-8.0, 0.0, 5.5, 13.0])
    ts_parts = [start + rng.uniform(0.0, 14 * DAY, 400)]
    for offset in offsets:
        midnights = start + np.arange(1, 4) * DAY - offset * HOUR
        ts_parts.extend([midnights - 0.5, midnights, midnights + 0.5])
    ts = np.concatenate(ts_parts)
    off = offsets[np.arange(ts.shape[0]) % offsets.shape[0]]
    mask = batch_weekend_mask(ts, off)
    for i in range(ts.shape[0]):
        assert mask[i] == is_weekend(float(ts[i]), float(off[i]))


@pytest.fixture(scope="module")
def faulty_evaluator():
    """A generated world's evaluator with the link-flap hook wired."""
    scenario = build_scenario(seed=3, scale=SCALE,
                              faults=FaultPlan.heavy())
    clasp = scenario.clasp
    assert clasp.platform.evaluator.flap_hook is not None
    return clasp.platform.evaluator, clasp.platform.topology


def test_batch_utilization_matches_scalar(faulty_evaluator):
    evaluator, topology = faulty_evaluator
    model = evaluator.utilization_model
    rng = np.random.default_rng(6)
    ts = float(CAMPAIGN_START) + rng.uniform(0.0, 7 * DAY, 500)
    for link_id in list(topology.links)[:8]:
        for direction in (0, 1):
            _assert_zero_ulp(
                batch_utilization(model, link_id, direction, ts),
                lambda t: model.utilization(link_id, direction, float(t)),
                ts)


def test_batch_observe_matches_scalar_with_flaps(faulty_evaluator):
    """The full observe twin, flap-hook floors included, over enough
    link-hours that some timestamps land in flapped hours."""
    evaluator, topology = faulty_evaluator
    rng = np.random.default_rng(7)
    start = float(CAMPAIGN_START)
    ts = np.sort(np.concatenate([
        start + rng.uniform(0.0, 7 * DAY, 400),
        start + np.arange(24) * HOUR + 1.0,
    ]))
    for link_id in list(topology.links)[:12]:
        link = topology.link(link_id)
        for direction in (0, 1):
            u, residual, loss, queue = batch_observe(evaluator, link,
                                                     direction, ts)
            for i, t in enumerate(ts):
                scalar = evaluator.observe(link, direction, float(t))
                assert u[i] == scalar.utilization
                assert residual[i] == scalar.residual_mbps
                assert loss[i] == scalar.loss_rate
                assert queue[i] == scalar.queue_delay_ms
