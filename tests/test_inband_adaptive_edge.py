"""Future-work extensions: in-band localization, adaptive lists,
edge-platform motivation."""

import numpy as np
import pytest

from repro.errors import MeasurementError, SelectionError
from repro.netsim.linkstate import LinkStateEvaluator
from repro.netsim.routing import Router
from repro.netsim.traffic import DiurnalProfile, UtilizationModel
from repro.rng import SeedTree
from repro.simclock import CAMPAIGN_START
from repro.tools.inband import InbandProbe
from repro.units import DAY


# ----------------------------------------------------------------------
# in-band bottleneck localization


@pytest.fixture()
def inband_rig(mini_world, seeds):
    topo = mini_world.topology
    util = UtilizationModel(seeds, CAMPAIGN_START)
    for link in topo.links.values():
        util.set_profile_both(link.link_id,
                              DiurnalProfile(base=0.2, noise_sigma=0.0))
    router = Router(topo, cloud_asn=mini_world.cloud_asn)
    probe = InbandProbe(topo, LinkStateEvaluator(util),
                        SeedTree(5), jitter_ms=0.05)
    return mini_world, util, router, probe


def test_locates_the_saturated_hop(inband_rig):
    world, util, router, probe = inband_rig
    route = router.route(world.pops["cloud-west"],
                         world.pops["ispb-south"])
    # Saturate one specific link on the forward path.
    victim_id, victim_dir = route.links[len(route.links) // 2]
    util.set_profile(victim_id, victim_dir,
                     DiurnalProfile(base=0.99, noise_sigma=0.0))
    estimate = probe.locate_bottleneck(route, CAMPAIGN_START, trains=6)
    assert estimate.link_id == victim_id
    assert estimate.queue_ms > 1.0
    assert estimate.confident
    assert len(estimate.per_hop_queue_ms) == len(route.links)


def test_quiet_path_yields_unconfident_estimate(inband_rig):
    world, _util, router, probe = inband_rig
    route = router.route(world.pops["cloud-west"],
                         world.pops["ispa-west"])
    estimate = probe.locate_bottleneck(route, CAMPAIGN_START)
    assert estimate.queue_ms < 1.0


def test_baseline_monotone(inband_rig):
    world, _util, router, probe = inband_rig
    route = router.route(world.pops["cloud-west"],
                         world.pops["ispb-south"])
    baseline = probe.baseline_path(route)
    assert all(a < b for a, b in zip(baseline, baseline[1:]))


def test_inband_validation(inband_rig):
    world, _util, router, probe = inband_rig
    route = router.route(world.pops["cloud-west"],
                         world.pops["ispa-west"])
    with pytest.raises(MeasurementError):
        probe.sample_path(route, CAMPAIGN_START, trains=0)
    with pytest.raises(MeasurementError):
        InbandProbe(world.topology, probe._eval, jitter_ms=-1)


# ----------------------------------------------------------------------
# adaptive server lists


def test_adaptive_rescan_detects_new_servers(small_scenario):
    from repro.core.adaptive import AdaptiveSelector
    from repro.core.selection.topology_based import TopologySelector

    scenario = small_scenario
    clasp = scenario.clasp
    selector = TopologySelector(clasp.bdrmap, clasp.scamper,
                                clasp.prefix2as, scenario.catalog)
    adaptive = AdaptiveSelector(selector, rescan_interval_days=30,
                                max_churn_fraction=0.3)
    src = clasp.platform.region_pop("us-west2")
    ts0 = float(CAMPAIGN_START)

    baseline = selector.run("us-west2", src.pop_id, ts0)
    adaptive.record_baseline("us-west2", baseline, ts0)
    deployed = baseline.selected_ids()

    assert not adaptive.needs_rescan("us-west2", ts0 + 10 * DAY)
    assert adaptive.needs_rescan("us-west2", ts0 + 31 * DAY)

    update = adaptive.rescan("us-west2", src.pop_id, ts0 + 31 * DAY,
                             deployed)
    assert update.churn <= max(1, int(len(deployed) * 0.3))
    new_list = update.apply_to(deployed)
    assert len(set(new_list)) == len(new_list)
    for sid in update.added:
        assert sid in new_list
    for sid in update.removed:
        assert sid not in new_list
    # Kept servers preserve their order.
    kept_order = [sid for sid in deployed if sid in set(new_list)]
    assert new_list[:len(kept_order)] == kept_order


def test_adaptive_validation(small_scenario):
    from repro.core.adaptive import AdaptiveSelector
    from repro.core.selection.topology_based import TopologySelector
    clasp = small_scenario.clasp
    selector = TopologySelector(clasp.bdrmap, clasp.scamper,
                                clasp.prefix2as, small_scenario.catalog)
    with pytest.raises(SelectionError):
        AdaptiveSelector(selector, rescan_interval_days=0)
    with pytest.raises(SelectionError):
        AdaptiveSelector(selector, max_churn_fraction=0.0)


# ----------------------------------------------------------------------
# edge platform motivation


def test_edge_platform_coverage_gap(small_scenario):
    from repro.tools.edgeplatform import EdgePlatform, QuotaExceeded
    scenario = small_scenario
    platform = EdgePlatform(scenario.internet, n_probes=120,
                            seeds=SeedTree(8))
    # Probes concentrate in big ISPs...
    assert platform.big_isp_probe_fraction() > 0.5
    # ...so coverage of the full edge-AS population has gaps, while the
    # speed test catalog reaches far more networks.
    edge_asns = scenario.internet.edge_asns
    probe_coverage = platform.coverage_of(edge_asns)
    catalog_asns = {s.asn for s in scenario.catalog}
    catalog_coverage = sum(1 for a in edge_asns if a in catalog_asns) \
        / len(edge_asns)
    assert probe_coverage < catalog_coverage

    # Throughput is quota-limited and access-capped.
    probe = platform.probes[0]
    rate = platform.measure_throughput(probe, float(CAMPAIGN_START),
                                       path_capacity_mbps=10_000.0)
    assert rate <= probe.access_mbps
    for _ in range(probe.daily_quota - 1):
        platform.measure_throughput(probe, float(CAMPAIGN_START), 1e4)
    with pytest.raises(QuotaExceeded):
        platform.measure_throughput(probe, float(CAMPAIGN_START), 1e4)
    # The next day the quota resets.
    platform.measure_throughput(probe, float(CAMPAIGN_START + DAY), 1e4)
    # Platform-wide daily budget is tiny next to CLASP's hourly cadence.
    assert platform.max_daily_tests() < 120 * 24


def test_edge_platform_validation(small_scenario):
    from repro.tools.edgeplatform import EdgePlatform
    with pytest.raises(MeasurementError):
        EdgePlatform(small_scenario.internet, n_probes=0)
