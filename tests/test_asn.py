"""AS model and relationship primitives."""

import pytest

from repro.netsim.asn import AS, ASRelationship, ASType, RelationshipKind


def test_as_validation():
    with pytest.raises(ValueError):
        AS(asn=0, name="bad", as_type=ASType.ACCESS_ISP)
    with pytest.raises(ValueError):
        AS(asn=-5, name="bad", as_type=ASType.ACCESS_ISP)


def test_as_org_defaults_to_name():
    a = AS(asn=10, name="Example Net", as_type=ASType.ACCESS_ISP)
    assert a.org == "Example Net"
    b = AS(asn=11, name="Example Net", as_type=ASType.ACCESS_ISP,
           org="Example Holdings")
    assert b.org == "Example Holdings"


def test_as_classification_helpers():
    isp = AS(asn=1, name="isp", as_type=ASType.ACCESS_ISP)
    tier1 = AS(asn=2, name="t1", as_type=ASType.TIER1)
    transit = AS(asn=3, name="tr", as_type=ASType.TRANSIT)
    hosting = AS(asn=4, name="h", as_type=ASType.HOSTING)
    assert isp.is_eyeball and not isp.is_transit
    assert tier1.is_transit and not tier1.is_eyeball
    assert transit.is_transit
    assert not hosting.is_transit and not hosting.is_eyeball


def test_ipinfo_labels():
    assert ASType.ACCESS_ISP.ipinfo_label == "isp"
    assert ASType.TIER1.ipinfo_label == "isp"
    assert ASType.HOSTING.ipinfo_label == "hosting"
    assert ASType.EDUCATION.ipinfo_label == "education"
    assert ASType.CLOUD.ipinfo_label == "hosting"


def test_relationship_accessors():
    rel = ASRelationship(a=10, b=20,
                         kind=RelationshipKind.CUSTOMER_TO_PROVIDER)
    assert rel.involves(10) and rel.involves(20)
    assert not rel.involves(30)
    assert rel.other(10) == 20
    assert rel.other(20) == 10
    with pytest.raises(ValueError):
        rel.other(30)


def test_relationship_kind_reversal():
    assert RelationshipKind.PEER_TO_PEER.reversed() is \
        RelationshipKind.PEER_TO_PEER
    assert RelationshipKind.CUSTOMER_TO_PROVIDER.reversed() is \
        RelationshipKind.CUSTOMER_TO_PROVIDER
