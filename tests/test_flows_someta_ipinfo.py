"""Flow capture/estimators, someta metadata, and ipinfo lookups."""

import numpy as np
import pytest

from repro.netsim.linkstate import LinkObservation
from repro.netsim.pathmodel import PathMetrics
from repro.netsim.topology import LinkKind
from repro.rng import SeedTree
from repro.tools.flows import (
    FlowCapture,
    estimate_loss_rate,
    estimate_rtt_ms,
)
from repro.tools.someta import CPU_SUSPECT_THRESHOLD, SometaRecorder


def _metrics(rtt=40.0, loss=0.001, burst=0.0):
    obs = LinkObservation(link_id=1, direction=0, capacity_mbps=1000.0,
                          utilization=0.5, residual_mbps=500.0,
                          loss_rate=loss, queue_delay_ms=0.5,
                          burst_loss=burst)
    return PathMetrics(rtt_ms=rtt, loss_rate=loss, avail_mbps=500.0,
                       forward=(obs,), reverse=(obs,),
                       burst_loss_rate=burst)


def test_capture_splits_bytes_across_flows():
    capture = FlowCapture(SeedTree(1))
    flows = capture.capture(_metrics(), total_bytes=100e6,
                            duration_s=15.0, n_flows=8,
                            direction="download")
    assert len(flows) == 8
    assert sum(f.bytes for f in flows) == pytest.approx(100e6)
    assert all(f.direction == "download" for f in flows)
    assert all(f.packets >= 1 for f in flows)


def test_capture_validation():
    capture = FlowCapture(SeedTree(1))
    with pytest.raises(ValueError):
        capture.capture(_metrics(), 1e6, 15.0, 0, "download")
    with pytest.raises(ValueError):
        capture.capture(_metrics(), 1e6, 0.0, 4, "download")
    with pytest.raises(ValueError):
        FlowCapture(rtt_samples_per_flow=0)


def test_rtt_estimator_recovers_path_rtt():
    capture = FlowCapture(SeedTree(2))
    flows = capture.capture(_metrics(rtt=80.0), 50e6, 15.0, 8, "download")
    estimate = estimate_rtt_ms(flows)
    # Min-filtering pushes the estimate to just above the true RTT.
    assert 80.0 <= estimate <= 88.0


def test_loss_estimator_recovers_loss():
    capture = FlowCapture(SeedTree(3))
    flows = capture.capture(_metrics(loss=0.02), 200e6, 15.0, 8,
                            "download")
    estimate = estimate_loss_rate(flows)
    assert estimate == pytest.approx(0.02, rel=0.3)


def test_loss_estimator_includes_burst_component():
    capture = FlowCapture(SeedTree(4))
    flows = capture.capture(_metrics(loss=0.001, burst=0.12), 200e6,
                            15.0, 8, "download")
    assert estimate_loss_rate(flows) > 0.08


def test_estimators_validate_input():
    with pytest.raises(ValueError):
        estimate_rtt_ms([])
    with pytest.raises(ValueError):
        estimate_loss_rate([])


def test_retransmission_rate_property():
    capture = FlowCapture(SeedTree(5))
    flows = capture.capture(_metrics(loss=0.05), 100e6, 15.0, 4,
                            "upload")
    for flow in flows:
        assert 0.0 <= flow.retransmission_rate <= 1.0


# ----------------------------------------------------------------------
# someta


def _vm():
    from repro.cloud.machinetypes import machine_type_by_name
    from repro.cloud.nic import NetworkInterface
    from repro.cloud.regions import region_by_name
    from repro.cloud.tiers import NetworkTier
    from repro.cloud.vm import VirtualMachine
    return VirtualMachine(
        name="meta-vm", zone=region_by_name("us-west1").zone("a"),
        machine_type=machine_type_by_name("n1-standard-2"),
        tier=NetworkTier.PREMIUM,
        nic=NetworkInterface(ip=1, host_pop_id=1, attach_link_id=1),
        created_ts=0.0)


def test_someta_records_and_flags():
    recorder = SometaRecorder(_vm(), SeedTree(6))
    quiet = recorder.record(0.0, test_cpu_utilization=0.2,
                            test_server_id="s-1")
    busy = recorder.record(60.0, test_cpu_utilization=0.95)
    assert not quiet.cpu_suspect
    assert busy.cpu_suspect
    assert len(recorder.snapshots) == 2
    assert 0 < recorder.suspect_fraction() < 1
    assert quiet.load_1min > 0
    assert quiet.memory_used_gb > 0


def test_someta_validation():
    recorder = SometaRecorder(_vm(), SeedTree(7))
    with pytest.raises(ValueError):
        recorder.record(0.0, test_cpu_utilization=1.5)


def test_paper_vm_type_not_cpu_limited():
    """The paper verified n1-standard-2 can drive a 1 Gbps test without
    depleting CPU - our model must agree."""
    vm = _vm()
    cpu = vm.machine_type.cpu_utilization_during_test(1000.0)
    assert cpu < CPU_SUSPECT_THRESHOLD


# ----------------------------------------------------------------------
# ipinfo


def test_ipinfo_business_types(small_scenario):
    from repro.tools.ipinfo import BusinessType, IpInfoDatabase
    scenario = small_scenario
    db = scenario.clasp.ipinfo
    seen = set()
    for server in scenario.catalog:
        record = db.lookup(server.ip)
        assert record.asn == server.asn or record.business_type \
            is BusinessType.UNKNOWN
        seen.add(record.business_type)
    assert BusinessType.ISP in seen
    # Some fraction of lookups must be Unknown (database gaps).
    total = len(list(scenario.catalog))
    unknown = sum(1 for s in scenario.catalog
                  if db.business_type(s.ip) is BusinessType.UNKNOWN)
    assert 0 < unknown < total * 0.3


def test_ipinfo_unrouted_space(small_scenario):
    from repro.netsim.addressing import parse_ip
    from repro.tools.ipinfo import BusinessType
    record = small_scenario.clasp.ipinfo.lookup(parse_ip("198.51.100.9"))
    assert record.asn is None
    assert record.business_type is BusinessType.UNKNOWN


def test_ipinfo_deterministic_per_asn(small_scenario):
    db = small_scenario.clasp.ipinfo
    server = next(iter(small_scenario.catalog))
    assert db.business_type(server.ip) == db.business_type(server.ip)


def test_ipinfo_validation(small_scenario):
    from repro.tools.ipinfo import IpInfoDatabase
    with pytest.raises(ValueError):
        IpInfoDatabase(small_scenario.internet.topology,
                       small_scenario.clasp.prefix2as, unknown_rate=1.0)
