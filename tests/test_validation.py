"""Ground-truth validation oracles."""

import numpy as np
import pytest

from repro.core.detectors import VariabilityDetector
from repro.core.validation import (
    AccuracyReport,
    bdrmap_accuracy,
    congestion_oracle,
    detector_scores,
)
from repro.errors import AnalysisError
from repro.simclock import CAMPAIGN_START


def test_accuracy_report_math():
    report = AccuracyReport(true_positives=8, false_positives=2,
                            false_negatives=8)
    assert report.precision == pytest.approx(0.8)
    assert report.recall == pytest.approx(0.5)
    assert report.f1 == pytest.approx(2 * 0.8 * 0.5 / 1.3)
    empty = AccuracyReport(0, 0, 0)
    assert empty.precision == 0.0
    assert empty.recall == 0.0
    assert empty.f1 == 0.0


def test_bdrmap_accuracy_oracle(small_scenario):
    scenario = small_scenario
    clasp = scenario.clasp
    src = clasp.platform.region_pop("us-central1")
    result = clasp.bdrmap.run(src.pop_id, float(CAMPAIGN_START))
    report = bdrmap_accuracy(result, clasp.platform)
    assert report.true_positives > 0
    assert report.precision > 0.8
    assert 0 < report.recall <= 1


@pytest.fixture(scope="module")
def oracle_run(small_scenario):
    clasp = small_scenario.clasp
    selection = clasp.select_topology_servers("us-west4")
    plan = clasp.deploy_topology("us-west4", selection, budget_servers=20)
    dataset = clasp.run_campaign([plan], days=3)
    return small_scenario, plan, dataset


def test_congestion_oracle_replays_path_state(oracle_run):
    scenario, plan, dataset = oracle_run
    pair = dataset.pairs(region="us-west4")[0]
    ts, truth = congestion_oracle(scenario.clasp.platform,
                                  scenario.catalog, dataset, pair)
    assert ts.size == truth.size
    assert ts.size > 0
    assert truth.dtype == bool


def test_detector_scores_against_oracle(oracle_run):
    """On pairs whose paths actually saturate, the deployed detector
    must beat a coin flip by a wide margin."""
    scenario, plan, dataset = oracle_run
    detector = VariabilityDetector()
    scored = []
    for pair in dataset.pairs(region="us-west4"):
        ts, truth = congestion_oracle(scenario.clasp.platform,
                                      scenario.catalog, dataset, pair)
        if truth.sum() < 3:
            continue
        detection = detector.detect(dataset, pair)
        scored.append(detector_scores(detection, ts, truth))
    if not scored:
        pytest.skip("no saturated pairs in this small sample")
    mean_recall = np.mean([s.recall for s in scored])
    mean_precision = np.mean([s.precision for s in scored])
    assert mean_recall > 0.4
    assert mean_precision > 0.4


def test_detector_scores_requires_overlap(oracle_run):
    _scenario, _plan, dataset = oracle_run
    pair = dataset.pairs(region="us-west4")[0]
    detection = VariabilityDetector().detect(dataset, pair)
    with pytest.raises(AnalysisError):
        detector_scores(detection, np.array([1.0, 2.0]),
                        np.array([True, False]))
