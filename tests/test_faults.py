"""The deterministic fault-injection layer (``repro.faults``).

Covers the plan/injector contracts directly, then a full fault matrix:
every :class:`FaultKind` is driven through its real injection site by
running a small campaign with only that fault's rate turned up, and the
campaign must *complete* with tagged-lost records instead of raising.
"""

import pytest

from repro.cloud.vm import VMStatus
from repro.core.congestion import detect
from repro.errors import ValidationError
from repro.experiments.scenario import build_scenario
from repro.faults import FaultInjector, FaultKind, FaultPlan
from repro.rng import SeedTree
from repro.simclock import CAMPAIGN_START
from repro.units import HOUR


# ----------------------------------------------------------------------
# FaultPlan validation


def test_plan_rejects_bad_rates():
    with pytest.raises(ValidationError):
        FaultPlan(speedtest_failure_rate=1.0)
    with pytest.raises(ValidationError):
        FaultPlan(vm_preemption_per_hour=-0.1)
    with pytest.raises(ValidationError):
        FaultPlan(slow_start_max_hours=-1)
    with pytest.raises(ValidationError):
        FaultPlan(max_retries=-1)
    with pytest.raises(ValidationError):
        FaultPlan(backoff_base_s=0.0)
    with pytest.raises(ValidationError):
        FaultPlan(backoff_factor=0.5)
    with pytest.raises(ValidationError):
        FaultPlan(link_flap_utilization=0.5)


def test_plan_presets():
    assert not FaultPlan.none().enabled
    assert FaultPlan.default().enabled
    heavy = FaultPlan.heavy()
    for kind in FaultKind:
        assert heavy.rate_of(kind) >= FaultPlan.default().rate_of(kind)


def test_plan_backoff_is_geometric():
    plan = FaultPlan(backoff_base_s=5.0, backoff_factor=2.0)
    assert plan.backoff_s(0) == 5.0
    assert plan.backoff_s(1) == 10.0
    assert plan.backoff_s(2) == 20.0
    with pytest.raises(ValidationError):
        plan.backoff_s(-1)


# ----------------------------------------------------------------------
# injector determinism


def _heavy_injector(seed=99):
    return FaultInjector(FaultPlan.heavy(), SeedTree(seed))


def test_injector_same_seed_same_decisions():
    a, b = _heavy_injector(), _heavy_injector()
    ts0 = float(CAMPAIGN_START)
    for hour in range(48):
        ts = ts0 + hour * HOUR
        assert a.vm_preempted("vm-1", ts) == b.vm_preempted("vm-1", ts)
        assert a.speedtest_fails("vm-1", "s1", ts) == \
            b.speedtest_fails("vm-1", "s1", ts)
        assert a.truncation_fraction("vm-1", "s2", ts) == \
            b.truncation_fraction("vm-1", "s2", ts)
        assert a.link_flap_utilization(7, 0, ts) == \
            b.link_flap_utilization(7, 0, ts)
    assert a.upload_fails("b", "k", 0) == b.upload_fails("b", "k", 0)
    assert a.events == b.events


def test_injector_decisions_are_order_independent():
    """Querying sites in a different order must not change outcomes."""
    ts0 = float(CAMPAIGN_START)
    queries = [("vm-a", "s1"), ("vm-a", "s2"), ("vm-b", "s1")]
    forward = _heavy_injector(5)
    backward = _heavy_injector(5)
    got_fwd = {q: forward.speedtest_fails(q[0], q[1], ts0)
               for q in queries}
    got_bwd = {q: backward.speedtest_fails(q[0], q[1], ts0)
               for q in reversed(queries)}
    assert got_fwd == got_bwd


def test_injector_different_seeds_differ():
    ts0 = float(CAMPAIGN_START)
    a, b = _heavy_injector(1), _heavy_injector(2)
    decisions_a = [a.speedtest_fails("vm", f"s{i}", ts0)
                   for i in range(200)]
    decisions_b = [b.speedtest_fails("vm", f"s{i}", ts0)
                   for i in range(200)]
    assert decisions_a != decisions_b


def test_injector_caches_repeated_queries():
    """Re-asking the same question returns the cached answer and does
    not duplicate the event log (link flaps are queried per path
    evaluation, many times per hour)."""
    injector = FaultInjector(FaultPlan(link_flap_per_hour=0.9),
                             SeedTree(3))
    ts = float(CAMPAIGN_START)
    first = injector.link_flap_utilization(1, 0, ts)
    n_events = len(injector.events)
    for _ in range(10):
        assert injector.link_flap_utilization(1, 0, ts + 120.0) == first
    assert len(injector.events) == n_events


def test_injector_disabled_plan_injects_nothing():
    injector = FaultInjector(FaultPlan.none(), SeedTree(4))
    ts = float(CAMPAIGN_START)
    assert not injector.vm_preempted("vm", ts)
    assert injector.truncation_fraction("vm", "s", ts) is None
    assert injector.slow_start_hours("vm", ts) == 0
    assert injector.link_flap_utilization(1, 1, ts) is None
    assert injector.events == []
    assert set(injector.summary().values()) == {0}


# ----------------------------------------------------------------------
# the fault matrix: every kind through its real injection site


def _run_faulty_campaign(fault_plan, seed=23, days=1, n_servers=6):
    scenario = build_scenario(seed=seed, scale=0.05, stories=False,
                              faults=fault_plan)
    clasp = scenario.clasp
    ids = [s.server_id
           for s in scenario.catalog.servers(country="US")[:n_servers]]
    plan = clasp.orchestrator.deploy_topology(
        "us-west1", ids, float(CAMPAIGN_START))
    dataset = clasp.run_campaign([plan], days=days)
    return scenario, plan, dataset


_MATRIX = {
    FaultKind.VM_PREEMPTION: FaultPlan(vm_preemption_per_hour=0.2,
                                       slow_start_max_hours=0),
    FaultKind.VM_SLOW_START: FaultPlan(vm_preemption_per_hour=0.2,
                                       slow_start_max_hours=3),
    FaultKind.SPEEDTEST_FAILURE: FaultPlan(speedtest_failure_rate=0.9,
                                           max_retries=0),
    FaultKind.TRUNCATED_TRANSFER: FaultPlan(truncated_transfer_rate=0.9,
                                            max_retries=0),
    FaultKind.UPLOAD_FAILURE: FaultPlan(upload_failure_rate=0.9,
                                        max_retries=0),
    FaultKind.LINK_FLAP: FaultPlan(link_flap_per_hour=0.5),
}


@pytest.mark.parametrize("kind", list(FaultKind), ids=lambda k: k.value)
def test_fault_matrix_campaign_survives(kind):
    """Each fault kind fires at its site; the campaign still completes
    and losses are tagged rather than raised."""
    scenario, plan, dataset = _run_faulty_campaign(_MATRIX[kind])
    injector = scenario.clasp.fault_injector
    assert injector.summary()[kind.value] > 0, \
        f"{kind.value} never injected - site not wired?"
    # The campaign ran to its full length and produced usable data.
    assert dataset.n_days == 1
    assert dataset.completed_tests > 0
    expected_slots = len(plan.server_ids) * 24
    assert (dataset.completed_tests + dataset.failed_tests
            + sum(1 for r in dataset.lost
                  if r.reason in ("preemption", "slow-start"))
            == expected_slots)


def test_matrix_speedtest_failures_tag_lost_slots():
    _sc, _plan, dataset = _run_faulty_campaign(
        _MATRIX[FaultKind.SPEEDTEST_FAILURE])
    reasons = dataset.lost_by_reason()
    assert reasons.get("speedtest", 0) > 0
    assert dataset.failed_tests == reasons["speedtest"]


def test_matrix_upload_failures_tag_lost_hours():
    _sc, plan, dataset = _run_faulty_campaign(
        _MATRIX[FaultKind.UPLOAD_FAILURE])
    reasons = dataset.lost_by_reason()
    assert reasons.get("upload", 0) > 0
    # Lost uploads leave no bucket object for that VM-hour.
    assert len(plan.bucket) < len(plan.vms) * 24


def test_matrix_retries_recover_most_tests():
    """With the retry budget on, a high transient failure rate still
    yields near-complete coverage - and the retries are counted."""
    _sc, plan, dataset = _run_faulty_campaign(
        FaultPlan(speedtest_failure_rate=0.3, max_retries=3))
    expected = len(plan.server_ids) * 24
    assert dataset.retried_tests > 0
    assert dataset.completed_tests >= 0.95 * expected


# ----------------------------------------------------------------------
# preemption recovery (the acceptance scenario)


def test_preemption_recovery_end_to_end():
    """A mid-campaign preemption yields a completed campaign with the
    lost hours marked and a replacement VM measuring the same list."""
    scenario, plan, dataset = _run_faulty_campaign(
        FaultPlan(vm_preemption_per_hour=0.1, slow_start_max_hours=2),
        days=2)
    platform = scenario.clasp.platform
    preempted = [vm for vm in platform.vms(running_only=False)
                 if vm.status is VMStatus.PREEMPTED]
    assert preempted, "no VM was ever preempted at 10%/hour over 2 days"

    reasons = dataset.lost_by_reason()
    assert reasons.get("preemption", 0) > 0
    # Replacements carry the -r<n> suffix and took over the plan slot.
    replacements = [vm for vm in plan.vms if "-r" in vm.name]
    assert replacements
    for vm in replacements:
        assert vm.is_running or vm.status is VMStatus.PREEMPTED
        # The replacement measures a full assignment from the plan.
        assert plan.servers_of(vm.name)
    # No preempted VM still owns an assignment.
    assert not {vm.name for vm in preempted} & \
        {vm.name for vm in plan.vms}
    # The campaign still produced data for every server in the plan.
    measured = {pair[1] for pair in dataset.pairs()}
    assert measured == set(plan.server_ids)
    # Analyses degrade gracefully on the thinned dataset.
    report = detect(dataset)
    assert 0.0 <= report.congested_day_fraction <= 1.0


def test_slow_start_hours_are_marked():
    scenario, _plan, dataset = _run_faulty_campaign(
        _MATRIX[FaultKind.VM_SLOW_START], days=2)
    summary = scenario.clasp.fault_injector.summary()
    reasons = dataset.lost_by_reason()
    if summary["vm-slow-start"]:
        assert reasons.get("slow-start", 0) > 0


# ----------------------------------------------------------------------
# same-seed reproducibility with faults enabled


def test_faulty_campaign_is_reproducible():
    from repro.core.export import dataset_digest
    plan = FaultPlan.heavy()
    _s1, _p1, ds1 = _run_faulty_campaign(plan, seed=31)
    _s2, _p2, ds2 = _run_faulty_campaign(plan, seed=31)
    assert dataset_digest(ds1) == dataset_digest(ds2)
    assert ds1.lost == ds2.lost
    assert ds1.retried_tests == ds2.retried_tests
