"""Link-state evaluation: residual bandwidth, loss, queueing delay."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.linkstate import LinkStateEvaluator
from repro.netsim.topology import LinkKind

utils = st.floats(min_value=0.0, max_value=2.5)
kinds = st.sampled_from(list(LinkKind))


def test_residual_below_saturation_is_free_capacity():
    assert LinkStateEvaluator.residual_mbps(1000.0, 0.3) == \
        pytest.approx(700.0)
    assert LinkStateEvaluator.residual_mbps(1000.0, 0.0) == \
        pytest.approx(1000.0)


def test_residual_contested_floor_when_saturated():
    # At and beyond saturation an aggressive test still wins a small,
    # shrinking share.
    at_cap = LinkStateEvaluator.residual_mbps(1000.0, 1.0)
    over = LinkStateEvaluator.residual_mbps(1000.0, 1.5)
    assert 0 < over < at_cap
    assert at_cap < 200.0


def test_residual_validation():
    with pytest.raises(ValueError):
        LinkStateEvaluator.residual_mbps(0.0, 0.5)
    with pytest.raises(ValueError):
        LinkStateEvaluator.residual_mbps(100.0, -0.1)


@given(utils)
def test_residual_positive_property(u):
    assert LinkStateEvaluator.residual_mbps(1000.0, u) > 0.0


@given(st.floats(min_value=0, max_value=2.4), kinds)
def test_loss_monotone_in_utilization(u, kind):
    lo = LinkStateEvaluator.loss_rate(u, kind)
    hi = LinkStateEvaluator.loss_rate(u + 0.1, kind)
    assert hi >= lo - 1e-15


def test_loss_regimes():
    floor = LinkStateEvaluator.loss_rate(0.0, LinkKind.ACCESS)
    quiet = LinkStateEvaluator.loss_rate(0.5, LinkKind.ACCESS)
    busy = LinkStateEvaluator.loss_rate(0.97, LinkKind.ACCESS)
    over = LinkStateEvaluator.loss_rate(1.3, LinkKind.ACCESS)
    assert floor < 1e-3
    assert quiet < 1e-3
    assert 1e-3 < busy < 0.05
    # Overload: the structural overflow fraction (~0.23) dominates.
    assert over == pytest.approx((1.3 - 1.0) / 1.3, abs=0.02)


def test_loss_capped():
    assert LinkStateEvaluator.loss_rate(50.0, LinkKind.ACCESS) <= 0.9


def test_loss_validation():
    with pytest.raises(ValueError):
        LinkStateEvaluator.loss_rate(-0.1, LinkKind.ACCESS)


@given(st.floats(min_value=0, max_value=2.4), kinds)
def test_queue_delay_monotone(u, kind):
    lo = LinkStateEvaluator.queue_delay_ms(u, kind)
    hi = LinkStateEvaluator.queue_delay_ms(u + 0.1, kind)
    assert hi >= lo - 1e-12


def test_queue_delay_capped_at_buffer():
    deep = LinkStateEvaluator.queue_delay_ms(1.4, LinkKind.ACCESS)
    assert deep == 60.0  # the access buffer ceiling
    shallow = LinkStateEvaluator.queue_delay_ms(0.2, LinkKind.BACKBONE)
    assert shallow < 0.1


def test_observe_roundtrip(mini_world, seeds):
    from repro.netsim.traffic import DiurnalProfile, UtilizationModel
    from repro.simclock import CAMPAIGN_START
    topo = mini_world.topology
    model = UtilizationModel(seeds, CAMPAIGN_START)
    link = topo.link(mini_world.links["peer-aw"])
    model.set_profile(link.link_id, 1,
                      DiurnalProfile(base=0.4, noise_sigma=0.0))
    evaluator = LinkStateEvaluator(model)
    obs = evaluator.observe(link, 1, CAMPAIGN_START)
    assert obs.link_id == link.link_id
    assert obs.direction == 1
    assert obs.utilization == pytest.approx(0.4, abs=0.15)
    assert not obs.saturated
    assert obs.residual_mbps <= link.capacity_mbps
    assert obs.burst_loss == 0.0


def test_observe_reports_burst_loss(mini_world, seeds):
    from repro.netsim.traffic import UtilizationModel
    from repro.simclock import CAMPAIGN_START
    topo = mini_world.topology
    link = topo.link(mini_world.links["peer-aw"])
    link.burst_loss = 0.12
    evaluator = LinkStateEvaluator(UtilizationModel(seeds, CAMPAIGN_START))
    obs = evaluator.observe(link, 0, CAMPAIGN_START)
    assert obs.burst_loss == 0.12
