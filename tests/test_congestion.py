"""Congestion detection: V(s,d), V_H(s,t), elbow, events."""

import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cloud.tiers import NetworkTier
from repro.core.campaign import CampaignDataset
from repro.core.congestion import (
    CongestionEvent,
    DayRecord,
    MIN_SAMPLES_PER_DAY,
    PAPER_THRESHOLD,
    choose_threshold_elbow,
    daily_variability,
    detect,
    hourly_variability,
    label_events,
    midnight_day_index,
    pair_daily_records,
    threshold_sweep,
)
from repro.core.records import MeasurementRecord, ServerMeta
from repro.errors import AnalysisError
from repro.simclock import CAMPAIGN_START
from repro.units import DAY, HOUR


def _make_dataset(hourly_downloads, days=2, offset_hours=0.0,
                  server_id="srv-1", region="us-west1"):
    """Dataset with a repeating 24-value daily download pattern."""
    dataset = CampaignDataset(CAMPAIGN_START, CAMPAIGN_START + days * DAY)
    dataset.add_server_meta(ServerMeta(
        server_id=server_id, asn=65000, sponsor="Test ISP",
        city_key="Testtown, US", country="US",
        utc_offset_hours=offset_hours, lat=0.0, lon=0.0,
        business_type="isp"))
    for day in range(days):
        for hour, value in enumerate(hourly_downloads):
            dataset.record(MeasurementRecord(
                ts=CAMPAIGN_START + day * DAY + hour * HOUR
                - offset_hours * HOUR,
                region=region, vm_name="vm-1", server_id=server_id,
                tier=NetworkTier.PREMIUM, download_mbps=float(value),
                upload_mbps=95.0, latency_ms=20.0,
                download_loss_rate=1e-4, upload_loss_rate=1e-4))
    return dataset


FLAT_DAY = [400.0] * 24
# Throughput collapses 10:00-13:00 (indices 10..12).
CONGESTED_DAY = [400.0] * 10 + [120.0, 80.0, 100.0] + [400.0] * 11


def _pair(region="us-west1", server="srv-1"):
    return (region, server, NetworkTier.PREMIUM.value)


def test_day_record_variability():
    record = DayRecord(pair=_pair(), day_index=0, n_samples=24,
                       t_max=400.0, t_min=100.0)
    assert record.variability == pytest.approx(0.75)
    zero = DayRecord(pair=_pair(), day_index=0, n_samples=24,
                     t_max=0.0, t_min=0.0)
    assert zero.variability == 0.0


def test_flat_day_not_congested():
    dataset = _make_dataset(FLAT_DAY)
    records = pair_daily_records(dataset, _pair())
    assert len(records) == 2
    assert all(r.variability == 0.0 for r in records)
    assert not label_events(dataset, _pair())


def test_congested_day_detected():
    dataset = _make_dataset(CONGESTED_DAY)
    records = pair_daily_records(dataset, _pair())
    assert all(r.variability == pytest.approx(0.8) for r in records)
    events = label_events(dataset, _pair(), threshold=0.5)
    # Three congested hours per day, two days.
    assert len(events) == 6
    assert sorted({e.local_hour for e in events}) == [10, 11, 12]
    assert all(e.v_h > 0.5 for e in events)
    assert all(e.day_peak_mbps == pytest.approx(400.0) for e in events)


def test_local_time_conversion():
    """Events at 10:00-12:00 local must be found regardless of the
    server's timezone."""
    dataset = _make_dataset(CONGESTED_DAY, offset_hours=-8.0)
    events = label_events(dataset, _pair(), threshold=0.5)
    assert sorted({e.local_hour for e in events}) == [10, 11, 12]


def test_hourly_variability_values():
    dataset = _make_dataset(CONGESTED_DAY, days=1)
    ts, vh = hourly_variability(dataset, _pair())
    assert ts.size == 24
    assert vh.max() == pytest.approx(0.8)
    assert (vh > PAPER_THRESHOLD).sum() == 3


def test_partial_days_skipped():
    dataset = _make_dataset(CONGESTED_DAY[:4], days=1)  # only 4 samples
    assert pair_daily_records(dataset, _pair()) == []
    ts, vh = hourly_variability(dataset, _pair())
    assert ts.size == 0


def test_daily_variability_grouping():
    dataset = _make_dataset(CONGESTED_DAY)
    out = daily_variability(dataset, region="us-west1")
    assert _pair() in out
    assert out[_pair()].shape == (2,)
    assert daily_variability(dataset, region="eu-x") == {}


def test_threshold_sweep_monotone_and_bounds():
    dataset = _make_dataset(CONGESTED_DAY)
    hs, day_frac, hour_frac = threshold_sweep(
        dataset, np.arange(0.1, 1.0, 0.1))
    assert np.all(np.diff(day_frac) <= 1e-12)
    assert np.all(np.diff(hour_frac) <= 1e-12)
    assert day_frac[0] == 1.0           # V = 0.8 > 0.1 every day
    assert hour_frac[-1] == 0.0
    with pytest.raises(AnalysisError):
        threshold_sweep(dataset, [])


def test_unknown_metric_rejected():
    dataset = _make_dataset(FLAT_DAY)
    with pytest.raises(AnalysisError):
        pair_daily_records(dataset, _pair(), metric="bogus")


def test_elbow_on_synthetic_knee():
    h = np.linspace(0.0, 1.0, 21)
    # A curve with a sharp knee at 0.5.
    f = np.where(h < 0.5, 1.0 - 1.6 * h, 0.25 - 0.1 * (h - 0.5))
    chosen = choose_threshold_elbow(h, f)
    assert 0.4 <= chosen <= 0.6


def test_elbow_respects_label_cap():
    h = np.linspace(0.0, 1.0, 11)
    f = np.linspace(1.0, 0.8, 11)  # labels way too much everywhere
    chosen = choose_threshold_elbow(h, f, max_label_fraction=0.30)
    assert chosen == h[-1]


def test_elbow_validation():
    with pytest.raises(AnalysisError):
        choose_threshold_elbow(np.array([0.1, 0.2]), np.array([1.0, 0.5]))
    with pytest.raises(AnalysisError):
        choose_threshold_elbow(np.linspace(0, 1, 5), np.linspace(1, 0, 4))


def test_detect_report_aggregates():
    dataset = _make_dataset(CONGESTED_DAY)
    report = detect(dataset, threshold=0.5)
    assert report.n_s_days == 2
    assert report.n_congested_days == 2
    assert report.congested_day_fraction == 1.0
    assert report.n_s_hours == 48
    assert report.congested_hour_fraction == pytest.approx(6 / 48)
    assert report.congested_day_count(_pair()) == 2
    assert report.measured_day_count(_pair()) == 2
    assert report.is_congested_server(_pair())
    assert report.congested_pairs() == [_pair()]


def test_congested_server_needs_10pct_of_days():
    # 1 congested day out of 12 measured days: below the 10% bar...
    pattern_days = [CONGESTED_DAY] + [FLAT_DAY] * 11
    dataset = CampaignDataset(CAMPAIGN_START, CAMPAIGN_START + 12 * DAY)
    dataset.add_server_meta(ServerMeta(
        server_id="srv-1", asn=65000, sponsor="T", city_key="X, US",
        country="US", utc_offset_hours=0.0, lat=0.0, lon=0.0))
    for day, pattern in enumerate(pattern_days):
        for hour, value in enumerate(pattern):
            dataset.record(MeasurementRecord(
                ts=CAMPAIGN_START + day * DAY + hour * HOUR,
                region="us-west1", vm_name="vm", server_id="srv-1",
                tier=NetworkTier.PREMIUM, download_mbps=float(value),
                upload_mbps=95.0, latency_ms=20.0,
                download_loss_rate=0.0, upload_loss_rate=0.0))
    report = detect(dataset, threshold=0.5)
    # 1/12 days < 10%... 1/12 = 8.3% -> not congested.
    assert not report.is_congested_server(
        ("us-west1", "srv-1", "premium"))
    # ...but with a stricter bar of 5% it is.
    assert report.is_congested_server(
        ("us-west1", "srv-1", "premium"), min_day_fraction=0.05)


@given(st.lists(st.floats(min_value=1.0, max_value=1000.0),
                min_size=MIN_SAMPLES_PER_DAY, max_size=24))
@settings(max_examples=40, deadline=None)
def test_variability_bounds_property(day_values):
    dataset = _make_dataset(day_values, days=1)
    for record in pair_daily_records(dataset, _pair()):
        assert 0.0 <= record.variability < 1.0
    _ts, vh = hourly_variability(dataset, _pair())
    assert np.all(vh >= 0.0) and np.all(vh < 1.0)


# ----------------------------------------------------------------------
# midnight alignment + lazy report indices (regressions)


def test_midnight_day_index_splits_at_local_midnight():
    start = float(CAMPAIGN_START) + 6 * HOUR  # 06:00 UTC campaign start
    assert midnight_day_index(start, 0.0, start) == 0
    # The boundary is local midnight, 18 hours in - not start + 24 h.
    assert midnight_day_index(start + 17 * HOUR, 0.0, start) == 0
    assert midnight_day_index(start + 18 * HOUR, 0.0, start) == 1
    ts = np.array([start, start + 17 * HOUR, start + 18 * HOUR,
                   start + 42 * HOUR])
    np.testing.assert_array_equal(
        midnight_day_index(ts, 0.0, start), [0, 0, 1, 2])
    # A west-of-UTC server never sees a negative index for ts >= start.
    assert midnight_day_index(start, -7.0, start) >= 0


def test_day_index_nonnegative_for_west_offsets():
    """Start-anchored bucketing gave srv-1's first local hours day -1."""
    dataset = _make_dataset(CONGESTED_DAY, offset_hours=-7.0)
    report = detect(dataset, threshold=0.5)
    assert [r.day_index for r in report.day_records] == [1, 2]
    assert all(e.day_index >= 0 for e in report.events)
    assert report.measured_day_count(_pair()) == 2


def test_non_midnight_start_splits_at_local_midnight():
    """A 06:00 UTC campaign start must not shift the day boundaries."""
    start = float(CAMPAIGN_START) + 6 * HOUR
    dataset = CampaignDataset(start, start + 2 * DAY)
    dataset.add_server_meta(ServerMeta(
        server_id="srv-1", asn=65000, sponsor="T", city_key="X, US",
        country="US", utc_offset_hours=0.0, lat=0.0, lon=0.0))
    for hour in range(48):
        dataset.record(MeasurementRecord(
            ts=start + hour * HOUR, region="us-west1", vm_name="vm",
            server_id="srv-1", tier=NetworkTier.PREMIUM,
            download_mbps=400.0 + hour * 1e-3, upload_mbps=95.0,
            latency_ms=20.0, download_loss_rate=0.0,
            upload_loss_rate=0.0))
    report = detect(dataset)
    # 18 samples before the first local midnight, then a full day,
    # then a 6-sample tail below MIN_SAMPLES_PER_DAY (dropped).  The
    # old start-anchored bucketing produced two 24-sample "days"
    # straddling midnight.
    assert [(r.day_index, r.n_samples) for r in report.day_records] \
        == [(0, 18), (1, 24)]
    assert report.pair_hours[_pair()] == 42


def test_report_indices_track_list_growth():
    """The lazy per-pair indices rebuild when the report grows."""
    dataset = _make_dataset(CONGESTED_DAY)
    report = detect(dataset, threshold=0.5)
    assert len(report.events_of(_pair())) == 6
    other = ("us-west1", "srv-2", "premium")
    assert report.events_of(other) == []
    # The streaming path appends to these lists between snapshots.
    report.events.append(CongestionEvent(
        pair=other, ts=float(CAMPAIGN_START), local_hour=0, day_index=0,
        v_h=0.9, throughput_mbps=10.0, day_peak_mbps=100.0))
    report.day_records.append(DayRecord(
        pair=other, day_index=0, n_samples=24, t_max=100.0, t_min=10.0))
    assert len(report.events_of(other)) == 1
    assert report.measured_day_count(other) == 1
    assert report.congested_day_count(other) == 1
    assert report.is_congested_server(other)


def test_detection_matches_pinned_fixture():
    from .fixtures_congestion import regression_dataset, serialize_report

    report = detect(regression_dataset(), threshold=0.5)
    fixture = json.loads(
        (pathlib.Path(__file__).parent / "golden"
         / "congestion_detection.json").read_text(encoding="utf-8"))
    assert serialize_report(report) == fixture["report"]
