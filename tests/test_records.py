"""Measurement records and server metadata."""

from repro.cloud.tiers import NetworkTier
from repro.core.records import MeasurementRecord, ServerMeta
from repro.speedtest.protocol import SpeedTestResult


def test_server_meta_label():
    meta = ServerMeta(server_id="s", asn=1, sponsor="Cox Cable",
                      city_key="Las Vegas, US", country="US",
                      utc_offset_hours=-8, lat=36.0, lon=-115.0)
    assert meta.label == "Las Vegas-Cox Cable"
    assert meta.business_type == "unknown"


def test_record_from_result():
    result = SpeedTestResult(
        server_id="srv-1", vm_name="vm-1", ts=1000.0, latency_ms=22.5,
        download_mbps=312.5, upload_mbps=94.2,
        download_loss_rate=1e-4, upload_loss_rate=2e-4,
        download_bytes=5e8, upload_bytes=1.7e8, duration_s=34.0,
        cpu_utilization=0.2)
    record = MeasurementRecord.from_result(result, "us-west1",
                                           NetworkTier.STANDARD)
    assert record.region == "us-west1"
    assert record.tier is NetworkTier.STANDARD
    assert record.download_mbps == 312.5
    assert record.latency_ms == 22.5
    assert record.ts == 1000.0
    assert result.total_bytes == 6.7e8
