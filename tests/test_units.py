"""Unit conversion tests."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import units


def test_rate_constructors():
    assert units.mbps(5) == 5.0
    assert units.gbps(1) == 1000.0
    assert units.kbps(1000) == 1.0


def test_mbps_to_bytes_roundtrip():
    rate = 123.4
    assert units.bytes_per_sec_to_mbps(
        units.mbps_to_bytes_per_sec(rate)) == pytest.approx(rate)


def test_gb_conversions():
    assert units.bytes_to_gb(1_000_000_000) == 1.0
    assert units.gb_to_bytes(2.5) == 2_500_000_000


def test_transfer_time_basics():
    # 1 Gbps moves 125 MB per second.
    assert units.transfer_time_s(125_000_000, 1000.0) == pytest.approx(1.0)


def test_transfer_time_rejects_nonpositive_rate():
    with pytest.raises(ValueError):
        units.transfer_time_s(100, 0.0)
    with pytest.raises(ValueError):
        units.transfer_time_s(100, -5.0)


def test_transferred_bytes_rejects_negative_duration():
    with pytest.raises(ValueError):
        units.transferred_bytes(10.0, -1.0)


def test_transferred_bytes_value():
    # 100 Mbps for 15 s = 187.5 MB.
    assert units.transferred_bytes(100.0, 15.0) == pytest.approx(187_500_000)


@given(st.floats(min_value=1e-3, max_value=1e5),
       st.floats(min_value=1.0, max_value=1e12))
def test_transfer_roundtrip_property(rate, n_bytes):
    duration = units.transfer_time_s(n_bytes, rate)
    assert units.transferred_bytes(rate, duration) == pytest.approx(
        n_bytes, rel=1e-9)


def test_duration_constants_consistent():
    assert units.MINUTE == 60
    assert units.HOUR == 60 * units.MINUTE
    assert units.DAY == 24 * units.HOUR
    assert units.WEEK == 7 * units.DAY
