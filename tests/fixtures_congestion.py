"""Pinned congestion-detection fixture: dataset builder + serializer.

The dataset is built to exercise exactly the bucketing cases the
midnight-alignment fix changed: a campaign that starts at 06:00 UTC
(not midnight) measured against servers east of UTC (half-hour
offset), at UTC, and west of UTC (whose first local hours used to get
``day_index = -1`` under start-anchored bucketing).  The serialized
``detect()`` output is pinned in
``tests/golden/congestion_detection.json``; regenerate it with
``scripts/regen_golden.py`` only on an intentional behaviour change.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.cloud.tiers import NetworkTier
from repro.core.campaign import CampaignDataset
from repro.core.congestion import CongestionReport
from repro.core.records import MeasurementRecord, ServerMeta
from repro.simclock import CAMPAIGN_START
from repro.units import DAY, HOUR

#: 06:00 UTC - NOT local midnight anywhere in the fixture - so the
#: old start-anchored bucketing would split every server's days at an
#: arbitrary local time.
FIXTURE_START = float(CAMPAIGN_START) + 6 * HOUR
FIXTURE_DAYS = 3

#: One server per timezone class the alignment fix has to get right.
FIXTURE_SERVERS = (("srv-east", 5.5), ("srv-utc", 0.0),
                   ("srv-west", -7.0))


def regression_dataset() -> CampaignDataset:
    """Hourly downloads collapsing at local hours 10-12, all servers."""
    dataset = CampaignDataset(FIXTURE_START,
                              FIXTURE_START + FIXTURE_DAYS * DAY)
    for server_id, offset in FIXTURE_SERVERS:
        dataset.add_server_meta(ServerMeta(
            server_id=server_id, asn=65000, sponsor="Fixture ISP",
            city_key=f"{server_id}-city, XX", country="XX",
            utc_offset_hours=offset, lat=0.0, lon=0.0,
            business_type="isp"))
    for hour in range(FIXTURE_DAYS * 24):
        ts = FIXTURE_START + hour * HOUR
        for server_id, offset in FIXTURE_SERVERS:
            local_hour = int((ts + offset * HOUR) // HOUR) % 24
            value = 80.0 if local_hour in (10, 11, 12) else 400.0
            dataset.record(MeasurementRecord(
                ts=ts, region="us-west1", vm_name="vm-1",
                server_id=server_id, tier=NetworkTier.PREMIUM,
                download_mbps=value + hour * 1e-3, upload_mbps=95.0,
                latency_ms=20.0, download_loss_rate=1e-4,
                upload_loss_rate=1e-4))
    return dataset


def serialize_report(report: CongestionReport) -> Dict[str, Any]:
    """JSON-stable form of a report (events, day records, pair hours)."""
    return {
        "threshold": report.threshold,
        "metric": report.metric,
        "day_records": [
            {"pair": list(record.pair), "day_index": record.day_index,
             "n_samples": record.n_samples, "t_max": record.t_max,
             "t_min": record.t_min}
            for record in report.day_records],
        "events": [
            {"pair": list(event.pair), "ts": event.ts,
             "local_hour": event.local_hour,
             "day_index": event.day_index, "v_h": event.v_h,
             "throughput_mbps": event.throughput_mbps,
             "day_peak_mbps": event.day_peak_mbps}
            for event in report.events],
        "pair_hours": {"/".join(pair): hours for pair, hours
                       in sorted(report.pair_hours.items())},
    }
