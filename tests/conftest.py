"""Shared test fixtures.

Two worlds are available:

* ``mini_world`` - a five-AS topology built by hand with exact,
  known-by-construction routes and link placements; routing, tier, and
  tool tests assert against it precisely.
* ``small_scenario`` - a generated scenario at a small scale (shared
  per session); integration tests exercise the real pipeline on it.

On top of ``small_scenario``, the builder fixtures ``us_server_ids``,
``deploy_us_plan``, and ``run_us_campaign`` centralise the
deploy-N-US-servers-and-run-a-campaign boilerplate that several
integration modules used to copy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

import pytest

from repro.geo import City, GeoPoint
from repro.geo.coords import propagation_delay_ms
from repro.netsim.addressing import Prefix, parse_ip
from repro.netsim.asn import AS, ASRelationship, ASType, RelationshipKind
from repro.netsim.topology import InterdomainLink, LinkKind, Topology
from repro.rng import SeedTree
from repro.simclock import CAMPAIGN_START
from repro.units import gbps


def _city(name, cc, region, lat, lon, off):
    return City(name=name, country=cc, region=region,
                point=GeoPoint(lat, lon), utc_offset_hours=off)


MINI_CITIES = {
    "west": _city("Westville", "US", "us-west", 45.0, -122.0, -8),
    "central": _city("Midtown", "US", "us-central", 41.0, -95.0, -6),
    "east": _city("Eastburg", "US", "us-east", 40.0, -75.0, -5),
    "south": _city("Southport", "US", "us-east", 33.0, -84.0, -5),
}


@dataclass
class MiniWorld:
    """Hand-built five-AS internetwork with known structure."""

    topology: Topology
    cloud_asn: int = 100
    tier1_asn: int = 200
    transit_asn: int = 300
    isp_a_asn: int = 400     # peers with the cloud at west + east
    isp_b_asn: int = 500     # reaches the cloud only via transit
    pops: Dict[str, int] = None
    links: Dict[str, int] = None


def build_mini_world() -> MiniWorld:
    topo = Topology()
    for city in MINI_CITIES.values():
        topo.add_city(city)

    def mk_as(asn, name, as_type, block):
        as_obj = AS(asn=asn, name=name, as_type=as_type)
        as_obj.prefixes.append(Prefix.parse(block))
        return topo.add_as(as_obj)

    mk_as(100, "MiniCloud", ASType.CLOUD, "10.100.0.0/16")
    mk_as(200, "MiniTier1", ASType.TIER1, "10.200.0.0/16")
    mk_as(300, "MiniTransit", ASType.TRANSIT, "10.30.0.0/16")
    mk_as(400, "ISP Alpha", ASType.ACCESS_ISP, "10.40.0.0/16")
    mk_as(500, "ISP Beta", ASType.ACCESS_ISP, "10.50.0.0/16")

    pops = {}

    def mk_pop(label, asn, city_key, loopback):
        pop = topo.add_pop(asn, city_key, parse_ip(loopback))
        pops[label] = pop.pop_id
        return pop

    wk = MINI_CITIES["west"].key
    ck = MINI_CITIES["central"].key
    ek = MINI_CITIES["east"].key
    sk = MINI_CITIES["south"].key

    mk_pop("cloud-west", 100, wk, "10.100.0.1")
    mk_pop("cloud-central", 100, ck, "10.100.0.2")
    mk_pop("cloud-east", 100, ek, "10.100.0.3")
    mk_pop("t1-west", 200, wk, "10.200.0.1")
    mk_pop("t1-east", 200, ek, "10.200.0.2")
    mk_pop("transit-east", 300, ek, "10.30.0.1")
    mk_pop("transit-south", 300, sk, "10.30.0.2")
    mk_pop("ispa-west", 400, wk, "10.40.0.1")
    mk_pop("ispa-east", 400, ek, "10.40.0.2")
    mk_pop("ispb-south", 500, sk, "10.50.0.1")

    links = {}

    def delay(a, b):
        return propagation_delay_ms(a.point, b.point)

    def backbone(label, pa, pb, city_a, city_b, cap=400.0):
        link = topo.add_link(LinkKind.BACKBONE, pops[pa], pops[pb],
                             gbps(cap), delay(MINI_CITIES[city_a],
                                              MINI_CITIES[city_b]))
        links[label] = link.link_id

    backbone("cloud-wc", "cloud-west", "cloud-central", "west", "central")
    backbone("cloud-ce", "cloud-central", "cloud-east", "central", "east")
    backbone("t1-we", "t1-west", "t1-east", "west", "east")
    backbone("transit-es", "transit-east", "transit-south", "east", "south")
    backbone("ispa-we", "ispa-west", "ispa-east", "west", "east")

    def border(label, near_label, far_label, near_ip, far_ip,
               rel, a_asn, b_asn, cap=20.0):
        link = topo.add_link(LinkKind.INTERDOMAIN, pops[near_label],
                             pops[far_label], gbps(cap), 0.2,
                             ip_a=parse_ip(near_ip), ip_b=parse_ip(far_ip),
                             address_asn=a_asn)
        links[label] = link.link_id
        topo.add_relationship(ASRelationship(a_asn, b_asn, rel))
        topo.register_interdomain(InterdomainLink(
            link_id=link.link_id, near_asn=a_asn, far_asn=b_asn,
            city_key=topo.pop(pops[near_label]).city_key,
            near_ip=parse_ip(near_ip), far_ip=parse_ip(far_ip)))

    # Cloud <-> ISP Alpha peering at west and east (cloud-numbered).
    border("peer-aw", "cloud-west", "ispa-west",
           "10.100.8.1", "10.100.8.2", RelationshipKind.PEER_TO_PEER,
           100, 400)
    border("peer-ae", "cloud-east", "ispa-east",
           "10.100.8.5", "10.100.8.6", RelationshipKind.PEER_TO_PEER,
           100, 400)
    # Cloud buys transit from Tier1 at west (standard-tier gateway).
    border("cloud-t1", "cloud-west", "t1-west",
           "10.100.8.9", "10.100.8.10",
           RelationshipKind.CUSTOMER_TO_PROVIDER, 100, 200)
    # And at east, so standard ingress can be delivered near an
    # east-coast region too.
    border("cloud-t1e", "cloud-east", "t1-east",
           "10.100.8.13", "10.100.8.14",
           RelationshipKind.CUSTOMER_TO_PROVIDER, 100, 200)
    # Transit buys from Tier1 at east.
    border("transit-t1", "transit-east", "t1-east",
           "10.30.8.1", "10.30.8.2",
           RelationshipKind.CUSTOMER_TO_PROVIDER, 300, 200)
    # ISP Alpha also buys from the transit (backup path).
    border("ispa-transit", "ispa-east", "transit-east",
           "10.40.8.1", "10.40.8.2",
           RelationshipKind.CUSTOMER_TO_PROVIDER, 400, 300)
    # ISP Beta is single-homed behind the transit.
    border("ispb-transit", "ispb-south", "transit-south",
           "10.50.8.1", "10.50.8.2",
           RelationshipKind.CUSTOMER_TO_PROVIDER, 500, 300)

    # Announce one /24 per eyeball PoP for probing tools.
    topo.register_announced_prefix(Prefix.parse("10.40.24.0/24"),
                                   pops["ispa-west"])
    topo.register_announced_prefix(Prefix.parse("10.40.25.0/24"),
                                   pops["ispa-east"])
    topo.register_announced_prefix(Prefix.parse("10.50.24.0/24"),
                                   pops["ispb-south"])
    topo.as_of(400).prefixes.extend([Prefix.parse("10.40.24.0/24"),
                                     Prefix.parse("10.40.25.0/24")])
    topo.as_of(500).prefixes.append(Prefix.parse("10.50.24.0/24"))

    topo.validate()
    return MiniWorld(topology=topo, pops=pops, links=links)


@pytest.fixture()
def mini_world() -> MiniWorld:
    return build_mini_world()


@pytest.fixture(scope="session")
def small_scenario():
    """A generated scenario shared by integration tests."""
    from repro.experiments import build_scenario
    return build_scenario(seed=11, scale=0.08)


@pytest.fixture(scope="session")
def seeds() -> SeedTree:
    return SeedTree(1234)


# ----------------------------------------------------------------------
# shared campaign/deployment builders over the session scenario


@pytest.fixture(scope="session")
def us_server_ids(small_scenario):
    """Builder: the first *n* US server ids of the shared catalog."""
    def ids(n):
        return [s.server_id
                for s in small_scenario.catalog.servers(country="US")[:n]]
    return ids


@pytest.fixture(scope="session")
def deploy_us_plan(small_scenario, us_server_ids):
    """Builder: deploy a premium topology plan of *n_servers* US servers."""
    def deploy(region, n_servers, ts=float(CAMPAIGN_START)):
        return small_scenario.clasp.orchestrator.deploy_topology(
            region, us_server_ids(n_servers), ts)
    return deploy


@pytest.fixture(scope="session")
def run_us_campaign(small_scenario, deploy_us_plan):
    """Builder: deploy one plan per region and run a short campaign."""
    def run(regions, n_servers=8, days=2):
        plans = [deploy_us_plan(region, n_servers) for region in regions]
        dataset = small_scenario.clasp.run_campaign(plans, days=days)
        return plans, dataset
    return run
