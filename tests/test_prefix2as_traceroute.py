"""Prefix-to-AS dataset and scamper traceroute on the mini world."""

import pytest

from repro.netsim.addressing import parse_ip
from repro.netsim.routing import GraphMode, Router, TierPolicy
from repro.rng import SeedTree
from repro.simclock import CAMPAIGN_START
from repro.tools.prefix2as import build_prefix2as
from repro.tools.traceroute import Scamper


@pytest.fixture()
def rig(mini_world):
    topo = mini_world.topology
    router = Router(topo, cloud_asn=mini_world.cloud_asn)
    p2a = build_prefix2as(topo)
    scamper = Scamper(topo, router, seeds=SeedTree(71),
                      no_response_rate=0.0)
    return mini_world, topo, router, p2a, scamper


def test_prefix2as_basic(rig):
    world, topo, _router, p2a, _sc = rig
    assert p2a.lookup(parse_ip("10.100.3.4")) == 100
    assert p2a.lookup(parse_ip("10.40.25.9")) == 400
    assert p2a.lookup(parse_ip("203.0.113.1")) is None
    # Interdomain interfaces map to the *address owner* (the cloud),
    # not the operator.
    assert p2a.lookup(parse_ip("10.100.8.2")) == 100
    assert len(p2a) > 5


def test_prefix2as_more_specific_wins(rig):
    world, topo, _router, p2a, _sc = rig
    # 10.40.24.0/24 is announced inside 10.40.0.0/16.
    hit = p2a.lookup_prefix(parse_ip("10.40.24.5"))
    assert hit is not None
    assert hit[0].length == 24


def test_traceroute_hops_are_ingress_interfaces(rig):
    world, topo, _router, _p2a, scamper = rig
    trace = scamper.trace(world.pops["cloud-west"],
                          world.pops["ispa-east"], CAMPAIGN_START,
                          first_as_policy=TierPolicy.HOT_POTATO)
    ips = trace.responding_ips()
    # Hot potato: first hop is ISP Alpha's west ingress on the peering
    # /30, then ISP Alpha's east router (its backbone ingress shows
    # the loopback since backbones are unnumbered).
    assert ips[0] == parse_ip("10.100.8.2")
    assert ips[-1] == topo.pop(world.pops["ispa-east"]).loopback_ip
    # RTTs increase along the path.
    rtts = [h.rtt_ms for h in trace.hops if h.rtt_ms is not None]
    assert all(a < b for a, b in zip(rtts, rtts[1:]))


def test_traceroute_to_ip_appends_destination(rig):
    world, topo, _router, _p2a, scamper = rig
    probe = parse_ip("10.50.24.1")
    trace = scamper.trace_to_ip(world.pops["cloud-west"], probe,
                                CAMPAIGN_START)
    assert trace is not None
    assert trace.dst_ip == probe
    assert trace.responding_ips()[-1] == probe
    # The far-side interface appears before the destination hop.
    assert parse_ip("10.100.8.10") in trace.responding_ips()


def test_traceroute_unrouted_ip(rig):
    world, _topo, _router, _p2a, scamper = rig
    assert scamper.trace_to_ip(world.pops["cloud-west"],
                               parse_ip("198.51.100.1"),
                               CAMPAIGN_START) is None


def test_traceroute_host_destination_not_duplicated(rig):
    world, topo, _router, _p2a, scamper = rig
    host = topo.add_host(400, world.pops["ispa-west"],
                         parse_ip("10.40.0.250"), 1000.0)
    trace = scamper.trace(world.pops["cloud-west"], host.pop_id,
                          CAMPAIGN_START, dst_ip=parse_ip("10.40.0.250"))
    ips = trace.responding_ips()
    assert ips.count(parse_ip("10.40.0.250")) == 1
    assert ips[-1] == parse_ip("10.40.0.250")


def test_no_response_rate(mini_world):
    topo = mini_world.topology
    router = Router(topo, cloud_asn=100)
    lossy = Scamper(topo, router, seeds=SeedTree(72),
                    no_response_rate=0.95)
    trace = lossy.trace(mini_world.pops["cloud-west"],
                        mini_world.pops["ispb-south"], CAMPAIGN_START,
                        dst_ip=parse_ip("10.50.24.1"))
    # Middle hops vanish, but the destination always answers.
    assert trace.responding_ips()[-1] == parse_ip("10.50.24.1")
    assert any(h.ip is None for h in trace.hops)


def test_scamper_validation(mini_world):
    topo = mini_world.topology
    router = Router(topo, cloud_asn=100)
    with pytest.raises(ValueError):
        Scamper(topo, router, no_response_rate=1.0)


def test_paris_flow_determinism(rig):
    world, _topo, _router, _p2a, scamper = rig
    t1 = scamper.trace(world.pops["cloud-west"], world.pops["ispb-south"],
                       CAMPAIGN_START, flow_id=9)
    t2 = scamper.trace(world.pops["cloud-west"], world.pops["ispb-south"],
                       CAMPAIGN_START, flow_id=9)
    assert t1.hop_ips() == t2.hop_ips()
