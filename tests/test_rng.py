"""Seed tree determinism and independence."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.rng import SeedTree, stable_hash64


def test_stable_hash_is_stable():
    assert stable_hash64("hello") == stable_hash64("hello")
    assert stable_hash64("hello") != stable_hash64("hell0")


def test_same_label_same_stream():
    a = SeedTree(42).generator("x").random(8)
    b = SeedTree(42).generator("x").random(8)
    assert np.array_equal(a, b)


def test_different_labels_different_streams():
    a = SeedTree(42).generator("x").random(8)
    b = SeedTree(42).generator("y").random(8)
    assert not np.array_equal(a, b)


def test_different_roots_different_streams():
    a = SeedTree(1).generator("x").random(8)
    b = SeedTree(2).generator("x").random(8)
    assert not np.array_equal(a, b)


def test_child_path_matters():
    tree = SeedTree(7)
    direct = tree.generator("a/b").random(4)
    nested = tree.child("a").generator("b").random(4)
    assert np.array_equal(direct, nested)


def test_child_and_sibling_disjoint():
    tree = SeedTree(7)
    a = tree.child("net").generator("noise").random(4)
    b = tree.child("cloud").generator("noise").random(4)
    assert not np.array_equal(a, b)


def test_empty_label_rejected():
    with pytest.raises(ValueError):
        SeedTree(1).generator("")


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        SeedTree("42")  # type: ignore[arg-type]


def test_seed_path_property():
    tree = SeedTree(5).child("a").child("b")
    assert tree.path == "a/b"
    assert tree.root_seed == 5


@given(st.text(min_size=1, max_size=40))
def test_seed_in_64bit_range(label):
    seed = SeedTree(999).seed(label)
    assert 0 <= seed < 2 ** 64


def test_label_reuse_raises_config_error():
    tree = SeedTree(42)
    tree.generator("noise")
    with pytest.raises(ConfigError, match="noise"):
        tree.generator("noise")


def test_label_reuse_allowed_when_explicit():
    tree = SeedTree(42)
    a = tree.generator("noise").random(4)
    b = tree.generator("noise", allow_reuse=True).random(4)
    assert np.array_equal(a, b)


def test_distinct_labels_do_not_collide():
    tree = SeedTree(42)
    tree.generator("a")
    tree.generator("b")  # no error


def test_sibling_nodes_track_labels_independently():
    tree = SeedTree(42)
    tree.child("net").generator("noise")
    tree.child("cloud").generator("noise")  # different nodes: fine


def test_collision_error_is_repro_error():
    from repro.errors import ReproError

    tree = SeedTree(1)
    tree.generator("x")
    with pytest.raises(ReproError):
        tree.generator("x")
