"""Geography: coordinates, distances, delays, city catalog."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geo import GeoPoint, default_catalog, haversine_km
from repro.geo.coords import propagation_delay_ms
from repro.rng import SeedTree


def test_geopoint_validation():
    with pytest.raises(ValueError):
        GeoPoint(91.0, 0.0)
    with pytest.raises(ValueError):
        GeoPoint(0.0, 181.0)


def test_haversine_known_distance():
    la = GeoPoint(34.05, -118.24)
    ny = GeoPoint(40.71, -74.01)
    # LA - NYC great circle is about 3940 km.
    assert haversine_km(la, ny) == pytest.approx(3940, rel=0.02)


def test_haversine_zero_and_symmetry():
    a = GeoPoint(10.0, 20.0)
    b = GeoPoint(-30.0, 150.0)
    assert haversine_km(a, a) == 0.0
    assert haversine_km(a, b) == pytest.approx(haversine_km(b, a))


@given(st.floats(min_value=-89, max_value=89),
       st.floats(min_value=-179, max_value=179),
       st.floats(min_value=-89, max_value=89),
       st.floats(min_value=-179, max_value=179))
def test_haversine_bounds_property(lat1, lon1, lat2, lon2):
    d = haversine_km(GeoPoint(lat1, lon1), GeoPoint(lat2, lon2))
    # No two points on Earth are farther apart than half the
    # circumference (~20015 km).
    assert 0.0 <= d <= 20016.0


def test_propagation_delay_floor_and_scale():
    a = GeoPoint(0, 0)
    assert propagation_delay_ms(a, a) == pytest.approx(0.05)
    b = GeoPoint(0, 10)  # ~1113 km
    d = propagation_delay_ms(a, b, inflation=1.0)
    assert d == pytest.approx(1113 / 200.0, rel=0.01)
    assert propagation_delay_ms(a, b, inflation=2.0) == pytest.approx(
        2 * d, rel=0.01)


def test_propagation_delay_rejects_deflation():
    with pytest.raises(ValueError):
        propagation_delay_ms(GeoPoint(0, 0), GeoPoint(1, 1), inflation=0.5)


def test_catalog_lookup():
    catalog = default_catalog()
    city = catalog.get("Los Angeles, US")
    assert city.country == "US"
    assert city.utc_offset_hours == -8
    assert catalog.by_name("Mumbai").country == "IN"
    assert "Las Vegas, US" in catalog


def test_catalog_unknown_city():
    from repro.errors import ConfigError
    with pytest.raises(ConfigError):
        default_catalog().get("Atlantis, XX")


def test_catalog_filter():
    catalog = default_catalog()
    us = catalog.filter(country="US")
    assert len(us) > 30
    assert all(c.country == "US" for c in us)
    eu = catalog.filter(region="eu")
    assert all(c.region == "eu" for c in eu)


def test_catalog_sampling_weighted_and_seeded():
    catalog = default_catalog()
    rng1 = SeedTree(3).generator("cities")
    rng2 = SeedTree(3).generator("cities")
    s1 = [c.key for c in catalog.sample(rng1, k=10, replace=False)]
    s2 = [c.key for c in catalog.sample(rng2, k=10, replace=False)]
    assert s1 == s2
    assert len(set(s1)) == 10


def test_catalog_sample_validation():
    catalog = default_catalog().filter(country="BE")
    rng = SeedTree(3).generator("x")
    with pytest.raises(ValueError):
        catalog.sample(rng, k=0)
    with pytest.raises(ValueError):
        catalog.sample(rng, k=len(catalog) + 1, replace=False)


def test_nearest():
    catalog = default_catalog()
    near_vegas = catalog.nearest(GeoPoint(36.0, -115.0))
    assert near_vegas.name == "Las Vegas"


def test_region_cities_exist_for_all_paper_regions():
    from repro.cloud.regions import REGIONS
    catalog = default_catalog()
    for region in REGIONS.values():
        assert region.city_key in catalog, region.name
