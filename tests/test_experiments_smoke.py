"""Smoke-run every paper experiment module on a tiny shared cache.

The benchmarks exercise these at a larger scale; here we verify every
run/render pair executes and produces structurally sane results even
on a very small world.
"""

import pytest

from repro.experiments import (
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    table1,
)
from repro.experiments.runner import ExperimentCache


@pytest.fixture(scope="module")
def tiny_cache():
    cache = ExperimentCache(seed=13, scale=0.08)
    # Pre-run the shared campaigns at a short length.
    cache.topology_dataset(days=3)
    cache.differential_dataset(days=3)
    return cache


def test_table1(tiny_cache):
    result = table1.run(tiny_cache)
    text = table1.render(result)
    assert len(result.rows) == 5
    assert "coverage" in text
    for row in result.rows:
        assert 0 < row.coverage <= 1


def test_fig2(tiny_cache):
    result = fig2.run(tiny_cache)
    text = fig2.render(result)
    assert "elbow" in text
    assert set(result.day_fractions) == \
        set(tiny_cache.scenario.us_regions)
    assert 0.05 <= result.chosen_threshold <= 0.95


def test_fig3(tiny_cache):
    result = fig3.run(tiny_cache)
    text = fig3.render(result)
    assert result.ts.size > 0
    assert result.n_congested_hours >= 1
    assert "congested hours" in text
    assert len(result.figure_series()) == 2


def test_fig4(tiny_cache):
    result = fig4.run(tiny_cache)
    text = fig4.render(result)
    assert set(result.panels) == {"4a topology (premium)",
                                  "4b differential premium",
                                  "4c differential standard"}
    assert result.panels["4a topology (premium)"].points
    assert "200-600" in text


def test_fig5(tiny_cache):
    result = fig5.run(tiny_cache)
    text = fig5.render(result)
    assert result.all_deltas("download").size > 0
    assert "std faster" in text
    assert 0.0 <= result.modest_delta_fraction() <= 1.0


def test_fig6(tiny_cache):
    result = fig6.run(tiny_cache)
    text = fig6.render(result)
    assert result.panels["us-east1"] or result.panels["us-west1"]
    assert "congestion probability" in text


def test_fig7(tiny_cache):
    result = fig7.run(tiny_cache)
    text = fig7.render(result)
    for region in tiny_cache.scenario.us_regions:
        assert result.all_us(region)
    assert "R" in text or "o" in text


def test_fig8(tiny_cache):
    result = fig8.run(tiny_cache)
    text = fig8.render(result)
    assert result.summaries
    assert "isp" in text
    lo, hi = result.isp_fraction_range("topology")
    assert 0.0 <= lo <= hi <= 1.0
