"""IPv4 addressing, prefixes, trie, and allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import AddressingError
from repro.netsim.addressing import (
    Prefix,
    PrefixAllocator,
    PrefixTrie,
    format_ip,
    parse_ip,
)

ips = st.integers(min_value=0, max_value=2**32 - 1)


def test_parse_format_roundtrip():
    for text in ("0.0.0.0", "10.1.2.3", "255.255.255.255", "192.0.2.1"):
        assert format_ip(parse_ip(text)) == text


@given(ips)
def test_parse_format_roundtrip_property(ip):
    assert parse_ip(format_ip(ip)) == ip


@pytest.mark.parametrize("bad", ["1.2.3", "1.2.3.4.5", "256.1.1.1",
                                 "a.b.c.d", "1..2.3", ""])
def test_parse_rejects_malformed(bad):
    with pytest.raises(AddressingError):
        parse_ip(bad)


def test_format_rejects_out_of_range():
    with pytest.raises(AddressingError):
        format_ip(-1)
    with pytest.raises(AddressingError):
        format_ip(2**32)


def test_prefix_parse_and_str():
    p = Prefix.parse("10.0.0.0/8")
    assert str(p) == "10.0.0.0/8"
    assert p.size == 2**24
    assert p.contains(parse_ip("10.255.0.1"))
    assert not p.contains(parse_ip("11.0.0.0"))


def test_prefix_rejects_host_bits():
    with pytest.raises(AddressingError):
        Prefix.parse("10.0.0.1/8")


def test_prefix_rejects_bad_length():
    with pytest.raises(AddressingError):
        Prefix(0, 33)


def test_prefix_contains_prefix():
    outer = Prefix.parse("10.0.0.0/8")
    inner = Prefix.parse("10.5.0.0/16")
    assert outer.contains_prefix(inner)
    assert not inner.contains_prefix(outer)


def test_prefix_hosts_skips_network_and_broadcast():
    p = Prefix.parse("192.0.2.0/30")
    hosts = list(p.hosts())
    assert hosts == [parse_ip("192.0.2.1"), parse_ip("192.0.2.2")]


def test_prefix_hosts_p2p_conventions():
    # /31 and /32 use every address.
    assert len(list(Prefix.parse("192.0.2.0/31").hosts())) == 2
    assert len(list(Prefix.parse("192.0.2.1/32").hosts())) == 1


def test_prefix_subnets():
    p = Prefix.parse("10.0.0.0/22")
    subs = list(p.subnets(24))
    assert len(subs) == 4
    assert subs[0] == Prefix.parse("10.0.0.0/24")
    assert subs[-1] == Prefix.parse("10.0.3.0/24")
    with pytest.raises(AddressingError):
        list(p.subnets(20))


# ----------------------------------------------------------------------
# trie


def test_trie_exact_and_lpm():
    trie = PrefixTrie()
    trie.insert(Prefix.parse("10.0.0.0/8"), "big")
    trie.insert(Prefix.parse("10.1.0.0/16"), "mid")
    trie.insert(Prefix.parse("10.1.2.0/24"), "small")
    assert trie.lookup(parse_ip("10.1.2.3")) == "small"
    assert trie.lookup(parse_ip("10.1.3.3")) == "mid"
    assert trie.lookup(parse_ip("10.9.9.9")) == "big"
    assert trie.lookup(parse_ip("11.0.0.1")) is None
    assert trie.exact(Prefix.parse("10.1.0.0/16")) == "mid"
    assert trie.exact(Prefix.parse("10.2.0.0/16")) is None
    assert len(trie) == 3


def test_trie_longest_match_returns_prefix():
    trie = PrefixTrie()
    trie.insert(Prefix.parse("10.1.0.0/16"), 7)
    hit = trie.longest_match(parse_ip("10.1.200.9"))
    assert hit == (Prefix.parse("10.1.0.0/16"), 7)


def test_trie_default_route():
    trie = PrefixTrie()
    trie.insert(Prefix(0, 0), "default")
    assert trie.lookup(parse_ip("203.0.113.9")) == "default"


def test_trie_replace_value():
    trie = PrefixTrie()
    p = Prefix.parse("10.0.0.0/8")
    trie.insert(p, 1)
    trie.insert(p, 2)
    assert trie.exact(p) == 2
    assert len(trie) == 1


def test_trie_items_complete():
    trie = PrefixTrie()
    prefixes = [Prefix.parse(t) for t in
                ("10.0.0.0/8", "10.128.0.0/9", "192.0.2.0/24", "0.0.0.0/0")]
    for i, p in enumerate(prefixes):
        trie.insert(p, i)
    assert {p for p, _v in trie.items()} == set(prefixes)


@st.composite
def prefix_strategy(draw):
    length = draw(st.integers(min_value=4, max_value=28))
    network = draw(ips) & (((1 << 32) - 1) << (32 - length))
    return Prefix(network & 0xFFFFFFFF, length)


@given(st.lists(prefix_strategy(), min_size=1, max_size=24), ips)
@settings(max_examples=120, deadline=None)
def test_trie_matches_linear_scan(prefixes, probe):
    """LPM must agree with a brute-force longest-match scan."""
    trie = PrefixTrie()
    table = {}
    for i, prefix in enumerate(prefixes):
        trie.insert(prefix, i)
        table[prefix] = i  # last insert wins, like the trie
    expected = None
    best_len = -1
    for prefix, value in table.items():
        if prefix.contains(probe) and prefix.length > best_len:
            best_len = prefix.length
            expected = value
    assert trie.lookup(probe) == expected


# ----------------------------------------------------------------------
# allocator


def test_allocator_alignment_and_disjointness():
    alloc = PrefixAllocator(Prefix.parse("10.0.0.0/16"))
    a = alloc.allocate(24)
    host = alloc.allocate_host()
    b = alloc.allocate(24)
    assert a == Prefix.parse("10.0.0.0/24")
    assert a.contains(host) is False
    assert not a.contains_prefix(b)
    assert b.network % 256 == 0


def test_allocator_exhaustion():
    alloc = PrefixAllocator(Prefix.parse("10.0.0.0/30"))
    alloc.allocate(31)
    alloc.allocate(31)
    with pytest.raises(AddressingError):
        alloc.allocate(31)


def test_allocator_rejects_oversized_request():
    alloc = PrefixAllocator(Prefix.parse("10.0.0.0/16"))
    with pytest.raises(AddressingError):
        alloc.allocate(8)


@given(st.lists(st.integers(min_value=20, max_value=30),
                min_size=1, max_size=40))
@settings(max_examples=60, deadline=None)
def test_allocator_never_overlaps_property(lengths):
    alloc = PrefixAllocator(Prefix.parse("10.0.0.0/12"))
    allocated = []
    for length in lengths:
        try:
            allocated.append(alloc.allocate(length))
        except AddressingError:
            break
    for i, a in enumerate(allocated):
        for b in allocated[i + 1:]:
            assert not a.contains_prefix(b)
            assert not b.contains_prefix(a)
