"""Monitor service: cached serving, bulk load accounting, exports."""

import json

import numpy as np
import pytest

from repro.core.streaming import StreamingCongestionDetector
from repro.errors import ValidationError
from repro.rng import SeedTree
from repro.serve import (ConsumerLoadObserver, LoadReport, MonitorService,
                         simulate_load)
from repro.units import DAY, HOUR

START = 0.0
PAIR = ("us-west1", "srv-1", "premium")


def _detector(window_days=None):
    detector = StreamingCongestionDetector(
        START, {"srv-1": 0.0}.__getitem__, window_days=window_days)
    # One sealed congested day: collapse at hours 10-12.
    for hour in range(24):
        value = 80.0 if hour in (10, 11, 12) else 400.0
        detector.observe(PAIR, START + hour * HOUR, value)
    detector.advance(START + DAY)
    return detector


def test_query_cache_hit_miss_and_expiry():
    service = MonitorService(_detector(), ttl_s=HOUR)
    first = service.query(0.0)
    assert first["n_pairs"] == 1
    assert first["congested"] == ["us-west1/srv-1/premium"]
    assert service.query(HOUR / 2) is first          # hit inside TTL
    assert service.query(HOUR) is not first          # expired at TTL
    report = service.load_report()
    assert report.queries == 3
    assert report.cache_hits == 1
    assert report.cache_misses == 2
    assert report.hit_rate == pytest.approx(1 / 3)
    assert report.mean_staleness_s == pytest.approx(HOUR / 2)
    assert report.max_staleness_s == pytest.approx(HOUR / 2)


def test_serve_batch_matches_per_query_accounting():
    arrivals = np.sort(
        SeedTree(3).generator("test.serve.arrivals").random(500)) * DAY
    loop = MonitorService(_detector(), ttl_s=HOUR)
    for ts in arrivals:
        loop.query(float(ts))
    bulk = MonitorService(_detector(), ttl_s=HOUR)
    refreshes = bulk.serve_batch(arrivals)
    a, b = loop.load_report(), bulk.load_report()
    assert b.queries == a.queries == 500
    assert b.cache_misses == a.cache_misses == refreshes
    assert b.cache_hits == a.cache_hits
    assert b.mean_staleness_s == pytest.approx(a.mean_staleness_s)
    assert b.max_staleness_s == pytest.approx(a.max_staleness_s)


def test_serve_batch_validation():
    service = MonitorService(_detector(), ttl_s=HOUR)
    with pytest.raises(ValidationError):
        service.serve_batch(np.array([2.0, 1.0]))
    with pytest.raises(ValidationError):
        service.serve_batch(np.zeros((2, 2)))
    assert service.serve_batch(np.array([])) == 0
    with pytest.raises(ValidationError):
        MonitorService(_detector(), ttl_s=0.0)


def test_simulate_load_is_deterministic_and_mostly_hits():
    reports = []
    for _ in range(2):
        service = MonitorService(_detector(), ttl_s=HOUR)
        reports.append(simulate_load(service, SeedTree(42), START,
                                     hours=24,
                                     consumers_per_hour=2_000))
    assert reports[0] == reports[1]
    report = reports[0]
    assert report.queries == 24 * 2_000
    # One refresh per TTL window: ~24 misses out of 48k queries.
    assert report.cache_misses <= 25
    assert report.hit_rate > 0.999
    assert 0.0 < report.mean_staleness_s < HOUR


def test_simulate_load_validation():
    service = MonitorService(_detector(), ttl_s=HOUR)
    with pytest.raises(ValidationError):
        simulate_load(service, SeedTree(1), START, hours=0,
                      consumers_per_hour=10)
    with pytest.raises(ValidationError):
        simulate_load(service, SeedTree(1), START, hours=1,
                      consumers_per_hour=0)


def test_snapshot_version_lag_and_refresh():
    detector = _detector()
    service = MonitorService(detector, ttl_s=HOUR)
    service.query(DAY)
    assert service.registry.gauge("serve.version_lag").value == 0.0
    # New sealed state while the cache is still warm: lag visible.
    for hour in range(24):
        detector.observe(PAIR, START + DAY + hour * HOUR, 400.0)
    detector.advance(START + 2 * DAY)
    service.query(DAY + HOUR / 2)
    assert service.registry.gauge("serve.version_lag").value == 1.0
    # After expiry the refresh catches up.
    snapshot = service.query(DAY + 2 * HOUR)
    assert snapshot["version"] == detector.version
    assert service.registry.gauge("serve.version_lag").value == 0.0


def test_exports_and_state_json():
    service = MonitorService(_detector(), ttl_s=HOUR)
    with pytest.raises(ValidationError):
        service.state_json()
    state = json.loads(service.state_json(now_ts=0.0))
    assert state["pairs"]["us-west1/srv-1/premium"]["congested"]
    assert state["sealed_days"] == 1
    prom = service.prometheus()
    assert "serve_queries 1" in prom
    assert "serve_cache_misses 1" in prom
    lines = service.json_lines().strip().splitlines()
    names = {json.loads(line)["name"] for line in lines}
    assert {"serve.queries", "serve.cache.misses",
            "serve.pairs"} <= names


def test_windowed_service_reports_eviction():
    detector = _detector(window_days=1)
    service = MonitorService(detector, ttl_s=HOUR)
    assert service.query(DAY)["n_congested"] == 1
    detector.advance(START + 2 * DAY)  # day 0 leaves the window
    assert service.query(2 * DAY)["n_congested"] == 0


def test_consumer_load_observer_rides_hours():
    from repro.engine.events import CampaignFinished, HourStarted

    service = MonitorService(_detector(), ttl_s=HOUR)
    observer = ConsumerLoadObserver(service, SeedTree(9),
                                    consumers_per_hour=100)
    for hour in range(3):
        observer.on_event(HourStarted(ts=DAY + hour * HOUR,
                                      hour_index=hour))
    observer.on_event(CampaignFinished(ts=DAY + 3 * HOUR, n_hours=3))
    report = service.load_report()
    assert report.queries == 301
    assert report.cache_misses >= 3
    with pytest.raises(ValidationError):
        ConsumerLoadObserver(service, SeedTree(9), consumers_per_hour=0)


def test_load_report_zero_queries():
    assert LoadReport(0, 0, 0, 0.0, 0.0).hit_rate == 0.0
