"""Dashboard and detectors over real campaign data (integration)."""

import pytest

from repro.core.congestion import detect
from repro.core.detectors import (
    AutocorrelationDetector,
    HmmDetector,
    VariabilityDetector,
    agreement_rate,
)
from repro.report.dashboard import render_dashboard


@pytest.fixture(scope="module")
def two_region_dataset(run_us_campaign):
    _plans, dataset = run_us_campaign(("us-west2", "europe-west2"),
                                      n_servers=8, days=3)
    return dataset


def test_dashboard_over_campaign(two_region_dataset):
    text = render_dashboard(two_region_dataset, top_k=2)
    assert "## us-west2" in text
    assert "## europe-west2" in text
    assert "download throughput distribution" in text
    # Every region panel reports server counts.
    assert text.count("congested s-hours") >= 2
    assert "cross-layer metrics" not in text  # no snapshot passed


def test_dashboard_obs_panel(two_region_dataset):
    snapshot = {
        "counters": {"speedtest.tests": 42.0},
        "gauges": {"lanes": 3.0},
        "histograms": {"speedtest.download_mbps":
                       {"count": 42, "mean": 97.5, "max": 240.0,
                        "buckets": {"<128": 30, "<256": 12}}},
    }
    text = render_dashboard(two_region_dataset, top_k=2,
                            obs_snapshot=snapshot)
    assert "## cross-layer metrics (repro.obs)" in text
    assert "speedtest.tests" in text
    assert "lanes (gauge)" in text
    assert "speedtest.download_mbps" in text


def test_detectors_on_campaign_pairs(two_region_dataset):
    dataset = two_region_dataset
    report = detect(dataset)
    detectors = (VariabilityDetector(), AutocorrelationDetector(),
                 HmmDetector())
    pair = dataset.pairs()[0]
    series = {d.name: d.detect(dataset, pair) for d in detectors}
    # All detectors see the same timeline length for the same pair
    # except the variability detector, which drops partial days.
    assert series["autocorrelation"].ts.size == \
        series["hmm"].ts.size
    assert series["variability"].ts.size <= \
        series["autocorrelation"].ts.size
    # Agreement between methods is defined and bounded.
    rate = agreement_rate(series["variability"],
                          series["autocorrelation"])
    assert 0.0 <= rate <= 1.0


def test_detection_fractions_bounded(two_region_dataset):
    dataset = two_region_dataset
    detector = VariabilityDetector()
    for pair in dataset.pairs()[:6]:
        result = detector.detect(dataset, pair)
        assert 0.0 <= result.congested_fraction <= 1.0
        assert result.n_events == int(result.congested.sum())
