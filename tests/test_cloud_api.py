"""CloudPlatform: VM lifecycle, quotas, tier-correct routing."""

import pytest

from repro.cloud.api import CloudPlatform, Direction
from repro.cloud.tiers import NetworkTier
from repro.errors import CloudError, QuotaExceededError
from repro.netsim.generator import GeneratorConfig, TopologyGenerator
from repro.rng import SeedTree
from repro.simclock import CAMPAIGN_START


@pytest.fixture(scope="module")
def platform():
    config = GeneratorConfig(
        n_tier1=4, n_transit=8, n_access_isp=24, n_big_isp=3,
        n_hosting=8, n_education=3, n_business=4)
    net = TopologyGenerator(config, SeedTree(31)).generate()
    return CloudPlatform(net, vm_quota_per_region=3)


def test_available_regions(platform):
    regions = platform.available_regions()
    assert "us-west1" in regions
    assert "europe-west1" in regions


def test_region_pop(platform):
    pop = platform.region_pop("us-west1")
    assert pop.asn == platform.cloud_asn
    assert pop.city_key == "The Dalles, US"
    with pytest.raises(CloudError):
        platform.region_pop("mars-north1")


def test_create_vm_attaches_host(platform):
    vm = platform.create_vm("us-west1", "n1-standard-2",
                            NetworkTier.PREMIUM, CAMPAIGN_START)
    host = platform.topology.pop(vm.nic.host_pop_id)
    assert host.is_host
    assert host.asn == platform.cloud_asn
    assert platform.topology.resolve_ip_to_pop(vm.nic.ip).pop_id \
        == host.pop_id
    assert vm.zone.region_name == "us-west1"
    platform.terminate_vm(vm.name, CAMPAIGN_START + 3600)
    assert not platform.get_vm(vm.name).is_running


def test_zone_round_robin(platform):
    names = []
    for _ in range(3):
        vm = platform.create_vm("us-east1", "n1-standard-2",
                                NetworkTier.PREMIUM, CAMPAIGN_START)
        names.append(vm.zone.name)
    assert len(set(names)) == 3  # spread across zones
    for vm in platform.vms("us-east1"):
        platform.terminate_vm(vm.name, CAMPAIGN_START)


def test_quota_enforced(platform):
    created = []
    for _ in range(3):
        created.append(platform.create_vm(
            "us-central1", "n1-standard-2", NetworkTier.PREMIUM,
            CAMPAIGN_START))
    with pytest.raises(QuotaExceededError):
        platform.create_vm("us-central1", "n1-standard-2",
                           NetworkTier.PREMIUM, CAMPAIGN_START)
    # Terminating frees quota.
    platform.terminate_vm(created[0].name, CAMPAIGN_START)
    platform.create_vm("us-central1", "n1-standard-2",
                       NetworkTier.PREMIUM, CAMPAIGN_START)
    for vm in platform.vms("us-central1"):
        platform.terminate_vm(vm.name, CAMPAIGN_START)


def test_duplicate_name_rejected(platform):
    platform.create_vm("us-west2", "n1-standard-2", NetworkTier.PREMIUM,
                       CAMPAIGN_START, name="dupe")
    with pytest.raises(CloudError):
        platform.create_vm("us-west2", "n1-standard-2",
                           NetworkTier.PREMIUM, CAMPAIGN_START,
                           name="dupe")
    platform.terminate_vm("dupe", CAMPAIGN_START)


def test_tier_routing_table(platform):
    """Premium uses the peering graph; standard transits a provider."""
    internet = platform.internet
    prem_vm = platform.create_vm("us-west1", "n1-standard-2",
                                 NetworkTier.PREMIUM, CAMPAIGN_START)
    std_vm = platform.create_vm("us-west1", "n1-standard-2",
                                NetworkTier.STANDARD, CAMPAIGN_START)
    # Find an edge AS that peers directly with the cloud.
    target_pop = None
    for asn in internet.access_isp_asns:
        if internet.topology.interdomain_between(platform.cloud_asn, asn):
            target_pop = internet.topology.pops_of_as(asn)[0].pop_id
            break
    assert target_pop is not None

    prem_route = platform.route(prem_vm, target_pop, Direction.EGRESS)
    std_route = platform.route(std_vm, target_pop, Direction.EGRESS)
    assert len(prem_route.as_path) == 2      # direct peering
    assert len(std_route.as_path) >= 3       # via transit
    assert std_route.as_path[1] in internet.cloud_transit_asns

    # Ingress premium ends inside the cloud at the VM's host PoP.
    ingress = platform.route(prem_vm, target_pop, Direction.INGRESS)
    assert ingress.dst_pop == prem_vm.nic.host_pop_id
    assert ingress.src_pop == target_pop

    # Routes are cached.
    again = platform.route(prem_vm, target_pop, Direction.EGRESS)
    assert again is prem_route

    # route_pair returns (data, reverse).
    data, ack = platform.route_pair(prem_vm, target_pop,
                                    Direction.INGRESS)
    assert data.src_pop == target_pop
    assert ack.src_pop == prem_vm.nic.host_pop_id
    for vm in (prem_vm, std_vm):
        platform.terminate_vm(vm.name, CAMPAIGN_START)


def test_charge_vm_uptime(platform):
    vm = platform.create_vm("us-west4", "n1-standard-2",
                            NetworkTier.PREMIUM, CAMPAIGN_START)
    before = platform.costs.total_usd
    charged = platform.charge_vm_uptime(2.0)
    assert charged >= 2 * 0.095
    assert platform.costs.total_usd == pytest.approx(before + charged)
    platform.terminate_vm(vm.name, CAMPAIGN_START)
