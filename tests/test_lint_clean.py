"""CI gate: the whole source tree must satisfy its own invariants.

This is the test that makes ``repro.lint`` binding.  Any new
nondeterministic call, inline unit constant, builtin raise, bare except,
unseeded generator, upward layer import - or, since the whole-program
pass, any shard-unsafe global, unordered iteration, SeedTree label
collision, or unhandled engine event - anywhere under ``src/repro``
fails here with the offending file, line, and rule code.
"""

import json

from pathlib import Path

from repro.lint import all_rules, findings_to_sarif, run
from repro.lint.xrules import SHARD_SAFE_GLOBALS

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.txt"


def _run_tree():
    return run([SRC], baseline=BASELINE if BASELINE.exists() else None,
               root=REPO_ROOT)


def test_source_tree_is_lint_clean():
    result = _run_tree()
    assert result.files_checked > 50
    formatted = "\n".join(f.format() for f in result.findings)
    assert result.ok, (
        f"repro.lint found {len(result.findings)} new invariant "
        f"violation(s):\n{formatted}\n"
        f"Fix them, add a `# repro: noqa RPRxxx` with justification, or "
        f"(last resort) baseline them in lint-baseline.txt."
    )


def test_module_graph_is_cycle_free():
    """Sharding precondition: no import cycles anywhere in the tree."""
    result = _run_tree()
    assert result.index is not None
    cycles = result.index.import_cycles()
    assert cycles == [], (
        f"import cycles would make shard import order significant: "
        f"{cycles}")


def test_shard_safe_allowlist_entries_still_exist():
    """Every RPR009 carve-out must name a live module-level binding -
    a stale allowlist entry is a carve-out nobody is using."""
    index = _run_tree().index
    for (module, name), why in sorted(SHARD_SAFE_GLOBALS.items()):
        assert why.strip(), f"{module}.{name} has an empty justification"
        assert index.binding(module, name) is not None, (
            f"SHARD_SAFE_GLOBALS entry ({module!r}, {name!r}) no longer "
            f"matches a module-level binding; remove or update it")


def test_tree_sarif_export_is_valid():
    """`repro lint --format sarif` on the real tree stays well-formed."""
    result = _run_tree()
    log = json.loads(findings_to_sarif(result.findings, result.baselined))
    assert log["version"] == "2.1.0"
    assert [r["id"] for r in log["runs"][0]["tool"]["driver"]["rules"]] \
        == [r.code for r in all_rules()]
    assert log["runs"][0]["results"] == []


def test_injected_violations_are_caught():
    """Every violation class the acceptance criteria name must trip."""
    from repro.lint import lint_text

    injected = {
        "RPR001": "import time\nts = time.time()\n",
        "RPR002": "def f(rate_mbps):\n    return rate_mbps * 1e6\n",
        "RPR003": "raise ValueError('x')\n",
        "RPR005": "try:\n    pass\nexcept:\n    pass\n",
        "RPR006": "import numpy as np\ng = np.random.default_rng()\n",
        "RPR009": "CACHE = {}\ndef put(k, v):\n    CACHE[k] = v\n",
        "RPR010": "def f():\n    return [x for x in {'b', 'a'}]\n",
    }
    for code, source in injected.items():
        found = [f.code for f in lint_text(source,
                                           module="repro.core.injected")]
        assert code in found, f"{code} fixture was not caught: {found}"

    layering = lint_text("from repro.core import clasp\n",
                         module="repro.netsim.injected")
    assert [f.code for f in layering] == ["RPR004"]
