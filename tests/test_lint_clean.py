"""CI gate: the whole source tree must satisfy its own invariants.

This is the test that makes ``repro.lint`` binding.  Any new
nondeterministic call, inline unit constant, builtin raise, bare except,
unseeded generator, or upward layer import anywhere under ``src/repro``
fails here with the offending file, line, and rule code.
"""

from pathlib import Path

from repro.lint import run

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.txt"


def test_source_tree_is_lint_clean():
    result = run([SRC], baseline=BASELINE if BASELINE.exists() else None,
                 root=REPO_ROOT)
    assert result.files_checked > 50
    formatted = "\n".join(f.format() for f in result.findings)
    assert result.ok, (
        f"repro.lint found {len(result.findings)} new invariant "
        f"violation(s):\n{formatted}\n"
        f"Fix them, add a `# repro: noqa RPRxxx` with justification, or "
        f"(last resort) baseline them in lint-baseline.txt."
    )


def test_injected_violations_are_caught():
    """Every violation class the acceptance criteria name must trip."""
    from repro.lint import lint_text

    injected = {
        "RPR001": "import time\nts = time.time()\n",
        "RPR002": "def f(rate_mbps):\n    return rate_mbps * 1e6\n",
        "RPR003": "raise ValueError('x')\n",
        "RPR005": "try:\n    pass\nexcept:\n    pass\n",
        "RPR006": "import numpy as np\ng = np.random.default_rng()\n",
    }
    for code, source in injected.items():
        found = [f.code for f in lint_text(source,
                                           module="repro.core.injected")]
        assert code in found, f"{code} fixture was not caught: {found}"

    layering = lint_text("from repro.core import clasp\n",
                         module="repro.netsim.injected")
    assert [f.code for f in layering] == ["RPR004"]
