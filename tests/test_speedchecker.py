"""Speedchecker edge latency probing."""

import pytest

from repro.cloud.tiers import NetworkTier
from repro.simclock import CAMPAIGN_START
from repro.tools.speedchecker import Speedchecker


@pytest.fixture(scope="module")
def medians(small_scenario):
    return small_scenario.clasp.speedchecker_medians(
        list(small_scenario.differential_regions))


def test_vantage_points(small_scenario):
    checker = small_scenario.clasp.speedchecker
    vps = checker.vantage_points()
    assert vps
    assert len(vps) <= checker.max_vps
    # VPs are cached.
    assert checker.vantage_points() is vps
    for vp in vps[:10]:
        assert vp.asn in small_scenario.internet.access_isp_asns
        assert vp.last_mile_ms > 0


def test_medians_structure(small_scenario, medians):
    assert medians
    regions = {m.region for m in medians}
    assert regions == set(small_scenario.differential_regions)
    for m in medians[:50]:
        assert m.tier in (NetworkTier.PREMIUM, NetworkTier.STANDARD)
        assert m.median_rtt_ms > 0
        assert m.n_samples > 100  # the paper's cut


def test_both_tiers_measured_per_tuple(medians):
    by_tuple = {}
    for m in medians:
        by_tuple.setdefault((m.city_key, m.asn, m.region),
                            set()).add(m.tier)
    both = [k for k, tiers in by_tuple.items() if len(tiers) == 2]
    assert len(both) >= len(by_tuple) * 0.9


def test_tier_latency_differences_exist(medians):
    """The preliminary study must surface both large and small tier
    deltas, or the differential method has nothing to select."""
    deltas = []
    by_tuple = {}
    for m in medians:
        by_tuple.setdefault((m.city_key, m.asn, m.region), {})[m.tier] = m
    for tiers in by_tuple.values():
        if len(tiers) == 2:
            deltas.append(tiers[NetworkTier.STANDARD].median_rtt_ms
                          - tiers[NetworkTier.PREMIUM].median_rtt_ms)
    assert any(abs(d) >= 50 for d in deltas)
    assert any(abs(d) < 10 for d in deltas)


def test_probe_vms_cleaned_up(small_scenario, medians):
    platform = small_scenario.clasp.platform
    leftover = [vm for vm in platform.vms()
                if vm.name.startswith("speedchecker-")]
    assert leftover == []


def test_validation(small_scenario):
    with pytest.raises(ValueError):
        Speedchecker(small_scenario.clasp.platform, max_vps=0)
