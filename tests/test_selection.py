"""Server selection: topology-based and differential-based."""

import pytest

from repro.cloud.tiers import NetworkTier
from repro.core.selection.differential import (
    DifferentialSelector,
    LatencyClass,
)
from repro.errors import SelectionError
from repro.simclock import CAMPAIGN_START
from repro.tools.speedchecker import TupleMedian


@pytest.fixture(scope="module")
def topo_selection(small_scenario):
    return small_scenario.clasp.select_topology_servers("us-west1")


def test_topology_selection_structure(small_scenario, topo_selection):
    selection = topo_selection
    assert selection.n_interdomain_links > 50
    assert 0 < selection.n_links_traversed <= selection.n_servers_traced
    assert selection.selected
    assert len(selection.selected) <= selection.n_links_traversed
    # One server per interconnection; ids unique.
    ids = selection.selected_ids()
    assert len(set(ids)) == len(ids)


def test_topology_selected_servers_match_their_links(small_scenario,
                                                     topo_selection):
    for chosen in topo_selection.selected[:20]:
        assert topo_selection.server_links[chosen.server_id] is not None
        assert chosen.far_ip in topo_selection.groups
        assert chosen.server_id in topo_selection.groups[chosen.far_ip]
        assert chosen.as_path_length >= 2
        assert chosen.rtt_ms > 0


def test_topology_selection_prefers_short_paths(small_scenario,
                                                topo_selection):
    """Within each router group, nothing beats the chosen server on
    (AS-path length, RTT)."""
    selection = topo_selection
    per_server = {}
    for chosen in selection.selected:
        per_server[chosen.server_id] = chosen
    for root, ids in list(selection.router_groups.items())[:30]:
        chosen = [c for c in selection.selected if c.server_id in ids]
        assert len(chosen) == 1


def test_topology_selection_orders_by_rtt(topo_selection):
    rtts = [s.rtt_ms for s in topo_selection.selected]
    assert rtts == sorted(rtts)


def test_topology_selection_coverage_math(topo_selection):
    ids = topo_selection.selected_ids()
    covered = topo_selection.links_covered_by(ids)
    assert covered == len(topo_selection.selected)
    assert topo_selection.coverage(ids) == pytest.approx(
        covered / topo_selection.n_links_traversed)
    # A budget-capped subset covers fewer links.
    subset = topo_selection.selected_ids(budget=5)
    assert topo_selection.links_covered_by(subset) == 5


def test_topology_selection_cached(small_scenario, topo_selection):
    again = small_scenario.clasp.select_topology_servers("us-west1")
    assert again is topo_selection


def test_shared_interconnection_fraction(topo_selection):
    assert 0.0 <= topo_selection.shared_interconnection_fraction < 1.0


# ----------------------------------------------------------------------
# differential


def _median(city, asn, region, tier, rtt, n=150):
    return TupleMedian(asn=asn, city_key=city, region=region, tier=tier,
                       median_rtt_ms=rtt, n_samples=n)


def test_classify_thresholds(small_scenario):
    selector = DifferentialSelector(small_scenario.catalog,
                                    small_scenario.clasp.prefix2as)
    medians = [
        # |delta| >= 50: premium lower.
        _median("A, US", 1, "r", NetworkTier.PREMIUM, 40.0),
        _median("A, US", 1, "r", NetworkTier.STANDARD, 95.0),
        # |delta| < 10: comparable.
        _median("B, US", 2, "r", NetworkTier.PREMIUM, 50.0),
        _median("B, US", 2, "r", NetworkTier.STANDARD, 55.0),
        # standard lower by 60.
        _median("C, US", 3, "r", NetworkTier.PREMIUM, 120.0),
        _median("C, US", 3, "r", NetworkTier.STANDARD, 60.0),
        # 20 ms apart: neither condition -> dropped.
        _median("D, US", 4, "r", NetworkTier.PREMIUM, 50.0),
        _median("D, US", 4, "r", NetworkTier.STANDARD, 70.0),
        # too few samples -> dropped.
        _median("E, US", 5, "r", NetworkTier.PREMIUM, 10.0, n=50),
        _median("E, US", 5, "r", NetworkTier.STANDARD, 99.0, n=50),
        # missing standard tier -> dropped.
        _median("F, US", 6, "r", NetworkTier.PREMIUM, 10.0),
    ]
    candidates = selector.classify(medians, "r")
    classes = {c.asn: c.latency_class for c in candidates}
    assert classes == {
        1: LatencyClass.PREMIUM_LOWER,
        2: LatencyClass.COMPARABLE,
        3: LatencyClass.STANDARD_LOWER,
    }
    assert candidates[0].delta_ms == pytest.approx(55.0)


def test_differential_selection_end_to_end(small_scenario):
    scenario = small_scenario
    selection = scenario.clasp.select_differential_servers(
        "europe-west1",
        regions_for_study=list(scenario.differential_regions),
        target_count=10)
    assert selection.candidates
    assert 1 <= len(selection.selected) <= 10
    # One server per <city, AS> tuple.
    tuples = {(c.city_key, c.asn) for _s, c in selection.selected}
    assert len(tuples) == len(selection.selected)
    # Server AS (via prefix2as) matches the candidate tuple's AS.
    for server, candidate in selection.selected:
        assert scenario.clasp.prefix2as.lookup(server.ip) == candidate.asn
        assert server.city_key == candidate.city_key
    by_class = selection.by_class()
    assert sum(len(v) for v in by_class.values()) == \
        len(selection.selected)
    sid = selection.selected[0][0].server_id
    assert selection.latency_class_of(sid) is not None
    assert selection.latency_class_of("nope") is None


def test_differential_selection_validation(small_scenario):
    selector = DifferentialSelector(small_scenario.catalog,
                                    small_scenario.clasp.prefix2as)
    with pytest.raises(SelectionError):
        selector.select([], "r", target_count=0)
    empty = selector.select([], "r", target_count=5)
    assert empty.selected == []
