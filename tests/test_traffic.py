"""Diurnal traffic profiles and the utilization model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.netsim.traffic import (
    DiurnalBump,
    DiurnalProfile,
    TrafficConfig,
    UtilizationModel,
)
from repro.rng import SeedTree
from repro.simclock import CAMPAIGN_START
from repro.units import DAY, HOUR


def test_bump_validation():
    with pytest.raises(ValueError):
        DiurnalBump(25.0, 2.0, 0.5)
    with pytest.raises(ValueError):
        DiurnalBump(12.0, 0.0, 0.5)


def test_bump_peak_and_support():
    bump = DiurnalBump(center_hour=21.0, width_hours=4.0, amplitude=0.6)
    assert bump.value(21.0) == pytest.approx(0.6)
    assert bump.value(17.0) == 0.0
    assert bump.value(1.0) == 0.0
    assert 0 < bump.value(19.0) < 0.6


def test_bump_periodic_wraparound():
    bump = DiurnalBump(center_hour=23.0, width_hours=3.0, amplitude=1.0)
    # 1 am is 2 hours past 11 pm across midnight.
    assert bump.value(1.0) == pytest.approx(bump.value(21.0))
    assert bump.value(1.0) > 0


@given(st.floats(min_value=0, max_value=23.99),
       st.floats(min_value=0.5, max_value=12),
       st.floats(min_value=0, max_value=2),
       st.floats(min_value=0, max_value=23.99))
def test_bump_bounded_property(center, width, amp, hour):
    value = DiurnalBump(center, width, amp).value(hour)
    assert 0.0 <= value <= amp + 1e-12


def test_profile_validation():
    with pytest.raises(ValueError):
        DiurnalProfile(base=-0.1)
    with pytest.raises(ValueError):
        DiurnalProfile(base=0.2, noise_sigma=-1)


def test_profile_mean_utilization_peaks_at_bump():
    profile = DiurnalProfile.congested_evening(utc_offset_hours=0.0)
    # 21:00 local on a weekday (2020-05-04 was a Monday).
    monday = CAMPAIGN_START + 3 * DAY
    at_peak = profile.mean_utilization(monday + 21 * HOUR)
    at_trough = profile.mean_utilization(monday + 4 * HOUR)
    assert at_peak > at_trough
    assert at_peak == pytest.approx(profile.peak_mean(), rel=0.05)


def test_profile_weekend_factor():
    profile = DiurnalProfile(base=0.5, weekend_factor=0.8)
    friday = CAMPAIGN_START  # 2020-05-01
    saturday = friday + DAY
    assert profile.mean_utilization(saturday) == pytest.approx(
        0.8 * profile.mean_utilization(friday))


def test_profile_timezone_shift():
    profile_utc = DiurnalProfile.congested_evening(utc_offset_hours=0.0)
    profile_pst = DiurnalProfile.congested_evening(utc_offset_hours=-8.0)
    ts = CAMPAIGN_START + 3 * DAY + 21 * HOUR  # 21:00 UTC
    # For the PST link, 21:00 UTC is 13:00 local - off the evening peak.
    assert profile_utc.mean_utilization(ts) > \
        profile_pst.mean_utilization(ts)


def test_utilization_model_deterministic():
    m1 = UtilizationModel(SeedTree(9), CAMPAIGN_START)
    m2 = UtilizationModel(SeedTree(9), CAMPAIGN_START)
    profile = DiurnalProfile.quiet(0.3)
    for m in (m1, m2):
        m.set_profile(17, 0, profile)
    ts = CAMPAIGN_START + 5 * HOUR
    assert m1.utilization(17, 0, ts) == m2.utilization(17, 0, ts)


def test_utilization_model_order_independent():
    m1 = UtilizationModel(SeedTree(9), CAMPAIGN_START)
    m2 = UtilizationModel(SeedTree(9), CAMPAIGN_START)
    profile = DiurnalProfile.quiet(0.3)
    for m in (m1, m2):
        m.set_profile(1, 0, profile)
        m.set_profile(2, 0, profile)
    a2 = m1.utilization(2, 0, CAMPAIGN_START)
    _ = m2.utilization(1, 0, CAMPAIGN_START)
    b2 = m2.utilization(2, 0, CAMPAIGN_START)
    assert a2 == b2


def test_utilization_nonnegative_and_noisy():
    model = UtilizationModel(SeedTree(3), CAMPAIGN_START)
    model.set_profile(5, 1, DiurnalProfile(base=0.02, noise_sigma=0.05))
    values = [model.utilization(5, 1, CAMPAIGN_START + h * HOUR)
              for h in range(200)]
    assert all(v >= 0.0 for v in values)
    assert np.std(values) > 0.0


def test_utilization_directions_independent():
    model = UtilizationModel(SeedTree(3), CAMPAIGN_START)
    model.set_profile_both(5, DiurnalProfile(base=0.3, noise_sigma=0.05))
    ts = CAMPAIGN_START + 7 * HOUR
    assert model.utilization(5, 0, ts) != model.utilization(5, 1, ts)


def test_utilization_default_profile():
    model = UtilizationModel(SeedTree(3), CAMPAIGN_START)
    assert not model.has_profile(99, 0)
    # Unprofiled links fall back to a quiet default.
    value = model.utilization(99, 0, CAMPAIGN_START)
    assert 0.0 <= value < 0.9


def test_set_profile_validates_direction():
    model = UtilizationModel(SeedTree(3), CAMPAIGN_START)
    with pytest.raises(ValueError):
        model.set_profile(1, 2, DiurnalProfile.quiet())


def test_traffic_config_validation():
    with pytest.raises(ValueError):
        TrafficConfig(congested_fraction=1.5)
    with pytest.raises(ValueError):
        TrafficConfig(daytime_congestion_share=-0.1)
    TrafficConfig()  # defaults valid
