"""Valley-free invariant on generated topologies.

Every AS path the routing engine produces must follow Gao-Rexford
export rules: an uphill segment (customer-to-provider edges), at most
one peer edge, then a downhill segment (provider-to-customer edges) -
never a "valley" (down then up) and never two peer edges.
"""

import pytest

from repro.netsim.generator import GeneratorConfig, TopologyGenerator
from repro.netsim.routing import GraphMode, Router
from repro.netsim.topology import Topology
from repro.rng import SeedTree


def _edge_kind(topo: Topology, a: int, b: int) -> str:
    """'up' (a buys from b), 'down' (a sells to b), or 'peer'."""
    if topo.is_customer(a, b):
        return "up"
    if topo.is_customer(b, a):
        return "down"
    if topo.is_peer(a, b):
        return "peer"
    raise AssertionError(f"no relationship between AS{a} and AS{b}")


def assert_valley_free(topo: Topology, path) -> None:
    kinds = [_edge_kind(topo, a, b) for a, b in zip(path, path[1:])]
    # Phase machine: up* (peer)? down*
    phase = "up"
    peer_edges = 0
    for kind in kinds:
        if kind == "peer":
            peer_edges += 1
            assert phase == "up", f"peer edge after descent in {path}"
            phase = "down"
        elif kind == "up":
            assert phase == "up", f"valley (down then up) in {path}"
        else:  # down
            phase = "down"
    assert peer_edges <= 1, f"{peer_edges} peer edges in {path}"


@pytest.fixture(scope="module")
def world():
    config = GeneratorConfig(
        n_tier1=5, n_transit=10, n_access_isp=36, n_big_isp=4,
        n_hosting=12, n_education=4, n_business=6)
    net = TopologyGenerator(config, SeedTree(97)).generate()
    return net, Router(net.topology, cloud_asn=net.cloud_asn)


def test_cloud_to_every_edge_is_valley_free(world):
    net, router = world
    for mode in (GraphMode.FULL, GraphMode.STANDARD):
        for asn in net.edge_asns:
            path = router.as_path(net.cloud_asn, asn, mode)
            assert_valley_free(net.topology, path)


def test_every_edge_to_cloud_is_valley_free(world):
    net, router = world
    for mode in (GraphMode.FULL, GraphMode.STANDARD):
        for asn in net.edge_asns:
            path = router.as_path(asn, net.cloud_asn, mode)
            assert_valley_free(net.topology, path)


def test_edge_to_edge_paths_are_valley_free(world):
    net, router = world
    from repro.errors import NoRouteError
    sources = net.edge_asns[:12]
    targets = net.edge_asns[-12:]
    for src in sources:
        for dst in targets:
            if src == dst:
                continue
            try:
                path = router.as_path(src, dst)
            except NoRouteError:
                continue
            assert_valley_free(net.topology, path)


def test_paths_prefer_customer_routes(world):
    """When the cloud has a direct peer edge to an AS, the path is the
    direct one (peer preferred over provider detours)."""
    net, router = world
    topo = net.topology
    direct_peers = [asn for asn in net.edge_asns
                    if topo.is_peer(net.cloud_asn, asn)]
    assert direct_peers
    for asn in direct_peers[:20]:
        assert router.as_path(net.cloud_asn, asn) == \
            (net.cloud_asn, asn)
