"""Valley-free routing, tier policies, and expansion on the mini world."""

import pytest

from repro.errors import NoRouteError, RoutingError
from repro.netsim.routing import GraphMode, Router, TierPolicy


@pytest.fixture()
def router(mini_world):
    return Router(mini_world.topology, cloud_asn=mini_world.cloud_asn)


def test_direct_peer_path(router):
    assert router.as_path(100, 400) == (100, 400)
    assert router.as_path(400, 100) == (400, 100)


def test_customer_route_preferred_over_peer_detour(router):
    # Cloud -> transit: the only valley-free option is via the tier-1
    # provider (the cloud cannot use ISP Alpha's transit link: peers do
    # not export provider routes).
    assert router.as_path(100, 300) == (100, 200, 300)


def test_single_homed_eyeball_path(router):
    # Cloud -> ISP Beta must descend via tier1 -> transit.
    assert router.as_path(100, 500) == (100, 200, 300, 500)
    assert router.as_path(500, 100) == (500, 300, 200, 100)


def test_valley_free_no_peer_then_provider(router):
    # ISP Alpha -> ISP Beta: cannot go up to cloud (peer) then up
    # again; must use its own provider chain.
    assert router.as_path(400, 500) == (400, 300, 500)


def test_standard_mode_removes_cloud_peering(router):
    full = router.as_path(400, 100, GraphMode.FULL)
    std = router.as_path(400, 100, GraphMode.STANDARD)
    assert full == (400, 100)
    assert std == (400, 300, 200, 100)


def test_standard_mode_non_cloud_paths_unchanged(router):
    assert router.as_path(400, 500, GraphMode.STANDARD) == \
        router.as_path(400, 500, GraphMode.FULL)


def test_self_path(router):
    assert router.as_path(100, 100) == (100,)


def test_no_route_raises(mini_world):
    topo = mini_world.topology
    from repro.netsim.asn import AS, ASType
    from repro.netsim.addressing import Prefix
    island = AS(asn=900, name="Island", as_type=ASType.BUSINESS)
    island.prefixes.append(Prefix.parse("10.90.0.0/16"))
    topo.add_as(island)
    router = Router(topo, cloud_asn=100)
    with pytest.raises(NoRouteError):
        router.as_path(100, 900)


def test_reachability(router, mini_world):
    assert router.reachable_from(100) == {100, 200, 300, 400, 500}


def test_expand_validates_endpoints(router, mini_world):
    pops = mini_world.pops
    with pytest.raises(RoutingError):
        router.expand((100, 400), pops["t1-west"], pops["ispa-west"])
    with pytest.raises(RoutingError):
        router.expand((100, 400), pops["cloud-west"], pops["t1-west"])


def test_route_structure(router, mini_world):
    pops = mini_world.pops
    route = router.route(pops["cloud-west"], pops["ispa-east"])
    assert route.src_pop == pops["cloud-west"]
    assert route.dst_pop == pops["ispa-east"]
    assert len(route.pops) == len(route.links) + 1
    assert route.as_path == (100, 400)
    assert len(route.border_crossings) == 1


def test_hot_vs_cold_potato_egress(router, mini_world):
    """Premium egress (cold) exits near the destination; hot potato
    exits at the origin."""
    pops = mini_world.pops
    cold = router.route(pops["cloud-west"], pops["ispa-east"],
                        first_as_policy=TierPolicy.COLD_POTATO)
    hot = router.route(pops["cloud-west"], pops["ispa-east"],
                       first_as_policy=TierPolicy.HOT_POTATO)
    # Cold potato: ride the cloud WAN to the east peering link.
    assert cold.border_crossings[0].city_key == "Eastburg, US"
    # Hot potato: hand off immediately at the west peering link, then
    # ride ISP Alpha's backbone east.
    assert hot.border_crossings[0].city_key == "Westville, US"
    # The cold route spends more hops inside the cloud.
    cloud_hops_cold = sum(
        1 for p in cold.pops
        if mini_world.topology.pop(p).asn == 100)
    cloud_hops_hot = sum(
        1 for p in hot.pops
        if mini_world.topology.pop(p).asn == 100)
    assert cloud_hops_cold > cloud_hops_hot


def test_standard_ingress_enters_near_region(router, mini_world):
    """Standard-tier ingress is delivered at the transit interconnect
    nearest the destination region (cold potato on the last hop)."""
    pops = mini_world.pops
    # ISP Beta -> cloud-east region, standard tier.
    route = router.route(pops["ispb-south"], pops["cloud-east"],
                         mode=GraphMode.STANDARD,
                         last_as_policy=TierPolicy.COLD_POTATO)
    assert route.as_path == (500, 300, 200, 100)
    assert route.border_crossings[-1].city_key == "Eastburg, US"
    # With hot potato it would enter at the tier-1's nearest link
    # (already east here), so also check a west-coast region:
    route_west = router.route(pops["ispb-south"], pops["cloud-west"],
                              mode=GraphMode.STANDARD,
                              last_as_policy=TierPolicy.COLD_POTATO)
    assert route_west.border_crossings[-1].city_key == "Westville, US"


def test_route_delay_is_sum_of_links(router, mini_world):
    pops = mini_world.pops
    topo = mini_world.topology
    route = router.route(pops["cloud-west"], pops["ispb-south"])
    total = sum(topo.link(lid).delay_ms for lid, _d in route.links)
    assert route.propagation_delay_ms(topo) == pytest.approx(total)


def test_ecmp_flow_stability(router, mini_world):
    pops = mini_world.pops
    r1 = router.route(pops["cloud-west"], pops["ispb-south"], flow_id=5)
    r2 = router.route(pops["cloud-west"], pops["ispb-south"], flow_id=5)
    assert r1.links == r2.links


def test_intra_cache_invalidation(router, mini_world):
    from repro.netsim.addressing import parse_ip
    topo = mini_world.topology
    pops = mini_world.pops
    # Warm the cache.
    router.route(pops["cloud-west"], pops["ispa-east"])
    host = topo.add_host(400, pops["ispa-east"],
                         parse_ip("10.40.0.210"), 1000.0)
    with pytest.raises(NoRouteError):
        router.route(pops["cloud-west"], host.pop_id)
    router.invalidate_intra_cache(400)
    route = router.route(pops["cloud-west"], host.pop_id)
    assert route.dst_pop == host.pop_id


def test_hosts_never_transit(router, mini_world):
    """A route between two routers never passes through a host leaf."""
    from repro.netsim.addressing import parse_ip
    topo = mini_world.topology
    pops = mini_world.pops
    topo.add_host(400, pops["ispa-west"], parse_ip("10.40.0.220"), 1000.0)
    router.invalidate_intra_cache(400)
    route = router.route(pops["cloud-west"], pops["ispa-east"],
                         first_as_policy=TierPolicy.HOT_POTATO)
    for pop_id in route.pops:
        assert not topo.pop(pop_id).is_host
