"""Billing and storage services."""

import pytest

from repro.cloud.billing import CostTracker, PriceBook
from repro.cloud.storage import StorageService
from repro.cloud.tiers import NetworkTier
from repro.errors import BudgetExhaustedError, ConfigError, StorageError
from repro.units import GB


def test_pricebook_egress_by_tier():
    prices = PriceBook()
    prem = prices.egress_usd(10 * GB, NetworkTier.PREMIUM)
    std = prices.egress_usd(10 * GB, NetworkTier.STANDARD)
    assert prem == pytest.approx(1.20)
    assert std == pytest.approx(0.85)
    assert std < prem  # the standard tier is the discount tier


def test_pricebook_storage():
    prices = PriceBook()
    assert prices.storage_usd(100 * GB, months=2) == pytest.approx(4.0)
    with pytest.raises(ValueError):
        prices.storage_usd(-1, 1)


def test_cost_tracker_accumulates_by_category():
    costs = CostTracker()
    costs.charge_vm_hours(0.095, 10)
    costs.charge_egress(5 * GB, NetworkTier.PREMIUM)
    costs.charge_storage(50 * GB, 1)
    spend = costs.spend_by_category()
    assert spend["vm_hours"] == pytest.approx(0.95)
    assert spend["egress"] == pytest.approx(0.60)
    assert spend["storage"] == pytest.approx(1.0)
    assert costs.total_usd == pytest.approx(2.55)


def test_budget_enforced():
    costs = CostTracker(budget_usd=1.0)
    costs.charge_vm_hours(0.095, 10)  # $0.95
    assert costs.remaining_usd() == pytest.approx(0.05)
    assert costs.would_exceed(0.10)
    assert not costs.would_exceed(0.04)
    with pytest.raises(BudgetExhaustedError):
        costs.charge_egress(10 * GB, NetworkTier.PREMIUM)


def test_budget_validation():
    with pytest.raises(ConfigError):
        CostTracker(budget_usd=0)
    assert CostTracker().remaining_usd() is None


def test_charge_validation():
    costs = CostTracker()
    with pytest.raises(ValueError):
        costs.charge_vm_hours(0.1, -1)


def test_paper_scale_monthly_cost():
    """The paper spent >$6k/month; our price book should be in that
    ballpark for the paper's deployment shape."""
    costs = CostTracker()
    # ~30 measurement VMs around the clock for a month.
    costs.charge_vm_hours(0.095, 30 * 24 * 30)
    # ~450 servers x 24 tests/day x 30 days x ~188 MB of upload each.
    n_tests = 450 * 24 * 30
    costs.charge_egress(n_tests * 187_500_000 * 0.95,
                        NetworkTier.PREMIUM)
    assert costs.total_usd > 6000


# ----------------------------------------------------------------------
# storage


def test_bucket_crud():
    service = StorageService()
    bucket = service.create_bucket("clasp-results", "us-west1")
    bucket.upload("vm1/1000.tar.gz", 5_000_000, ts=1000.0)
    bucket.upload("vm1/2000.tar.gz", 6_000_000, ts=2000.0)
    assert len(bucket) == 2
    assert bucket.total_bytes == 11_000_000
    assert bucket.get("vm1/1000.tar.gz").size_bytes == 5_000_000
    assert [o.key for o in bucket.list("vm1/")] == \
        ["vm1/1000.tar.gz", "vm1/2000.tar.gz"]
    bucket.delete("vm1/1000.tar.gz")
    assert len(bucket) == 1
    with pytest.raises(StorageError):
        bucket.get("vm1/1000.tar.gz")
    with pytest.raises(StorageError):
        bucket.delete("nope")


def test_bucket_overwrite_replaces():
    service = StorageService()
    bucket = service.create_bucket("b", "us-east1")
    bucket.upload("k", 100, ts=1.0)
    bucket.upload("k", 300, ts=2.0)
    assert bucket.total_bytes == 300


def test_bucket_validation():
    service = StorageService()
    bucket = service.create_bucket("b", "us-east1")
    with pytest.raises(StorageError):
        bucket.upload("", 10, 0.0)
    with pytest.raises(StorageError):
        bucket.upload("k", -1, 0.0)
    with pytest.raises(StorageError):
        service.create_bucket("b", "us-east1")
    with pytest.raises(StorageError):
        service.bucket("missing")


def test_storage_billing_integration():
    costs = CostTracker()
    service = StorageService(costs)
    bucket = service.create_bucket("b", "us-east1")
    bucket.upload("k", int(100 * GB), ts=0.0)
    charged = service.charge_monthly_storage(months=1.0)
    assert charged == pytest.approx(2.0)
    assert costs.total_usd == pytest.approx(2.0)
