"""Hourly schedule and VM orchestration."""

import numpy as np
import pytest

from repro.core.orchestrator import (
    DOWNLINK_CAP_MBPS,
    TESTS_PER_VM_HOUR,
    UPLINK_CAP_MBPS,
    Orchestrator,
)
from repro.core.scheduler import HourlySchedule, TEST_SLOT_S
from repro.errors import SchedulingError
from repro.rng import SeedTree
from repro.simclock import CAMPAIGN_START
from repro.units import HOUR


def test_vms_needed():
    assert Orchestrator.vms_needed(1) == 1
    assert Orchestrator.vms_needed(17) == 1
    assert Orchestrator.vms_needed(18) == 2
    assert Orchestrator.vms_needed(106) == 7
    with pytest.raises(SchedulingError):
        Orchestrator.vms_needed(0)


def test_schedule_validation():
    with pytest.raises(SchedulingError):
        HourlySchedule("vm", [])
    with pytest.raises(SchedulingError):
        HourlySchedule("vm", [f"s{i}" for i in range(18)])
    with pytest.raises(SchedulingError):
        HourlySchedule("vm", ["s1", "s1"])


def test_hour_slots_cover_all_servers_once():
    servers = [f"s{i}" for i in range(17)]
    schedule = HourlySchedule("vm", servers, SeedTree(1))
    slots = schedule.hour_slots(float(CAMPAIGN_START))
    assert sorted(s.server_id for s in slots) == sorted(servers)
    # Slots are spaced by the 120 s test budget, inside the hour.
    for i, slot in enumerate(slots):
        assert CAMPAIGN_START + i * TEST_SLOT_S <= slot.ts
        assert slot.ts < CAMPAIGN_START + (i + 1) * TEST_SLOT_S
        assert slot.slot_index == i


def test_order_randomized_between_hours():
    servers = [f"s{i}" for i in range(17)]
    schedule = HourlySchedule("vm", servers, SeedTree(2))
    h1 = [s.server_id for s in schedule.hour_slots(float(CAMPAIGN_START))]
    h2 = [s.server_id for s in
          schedule.hour_slots(float(CAMPAIGN_START + HOUR))]
    assert h1 != h2  # astronomically unlikely to collide


def test_schedule_deterministic_per_seed():
    servers = [f"s{i}" for i in range(10)]
    a = HourlySchedule("vm", servers, SeedTree(3))
    b = HourlySchedule("vm", servers, SeedTree(3))
    assert [s.server_id for s in a.hour_slots(float(CAMPAIGN_START))] == \
        [s.server_id for s in b.hour_slots(float(CAMPAIGN_START))]


def test_misaligned_hour_rejected():
    schedule = HourlySchedule("vm", ["s1"], SeedTree(4))
    with pytest.raises(SchedulingError):
        schedule.hour_slots(float(CAMPAIGN_START) + 17.0)
    with pytest.raises(SchedulingError):
        list(schedule.iter_hours(float(CAMPAIGN_START) + 1, 2))
    with pytest.raises(SchedulingError):
        list(schedule.iter_hours(float(CAMPAIGN_START), 0))


def test_tail_of_hour_budgets():
    servers = [f"s{i}" for i in range(17)]
    schedule = HourlySchedule("vm", servers, SeedTree(5))
    start = float(CAMPAIGN_START)
    tr = schedule.traceroute_window(start)
    up = schedule.upload_ts(start)
    assert tr == start + 17 * TEST_SLOT_S
    assert up == tr + 20 * 60
    assert up + 5 * 60 <= start + HOUR  # everything fits in the hour


def test_iter_hours():
    schedule = HourlySchedule("vm", ["s1", "s2"], SeedTree(6))
    hours = list(schedule.iter_hours(float(CAMPAIGN_START), 3))
    assert len(hours) == 3
    assert hours[1][0].ts >= CAMPAIGN_START + HOUR


# ----------------------------------------------------------------------
# orchestrator (on the small generated scenario)


def test_deploy_topology(small_scenario, us_server_ids):
    clasp = small_scenario.clasp
    orch = clasp.orchestrator
    server_ids = us_server_ids(40)
    plan = orch.deploy_topology("us-west4", server_ids,
                                float(CAMPAIGN_START))
    try:
        assert len(plan.vms) == Orchestrator.vms_needed(len(server_ids))
        assert sorted(plan.server_ids) == sorted(server_ids)
        for vm, chunk in plan.assignments:
            assert len(chunk) <= TESTS_PER_VM_HOUR
            assert vm.nic.ingress_cap_mbps() == DOWNLINK_CAP_MBPS
            assert vm.nic.egress_cap_mbps() == UPLINK_CAP_MBPS
            assert vm.machine_type.name == "n1-standard-2"
        assert plan.bucket.region_name == "us-west4"
        assert plan.servers_of(plan.vms[0].name) == \
            list(plan.assignments[0][1])
        with pytest.raises(SchedulingError):
            plan.servers_of("nope")
    finally:
        orch.teardown(plan, float(CAMPAIGN_START))
    assert all(not vm.is_running for vm in plan.vms)


def test_deploy_topology_budget_cap(small_scenario, us_server_ids):
    clasp = small_scenario.clasp
    server_ids = us_server_ids(40)
    plan = clasp.orchestrator.deploy_topology(
        "us-west3", server_ids, float(CAMPAIGN_START), budget_servers=10)
    try:
        assert len(plan.server_ids) == 10
        assert plan.server_ids == server_ids[:10]
    finally:
        clasp.orchestrator.teardown(plan, float(CAMPAIGN_START))


def test_deploy_differential_pairs(small_scenario):
    from repro.cloud.tiers import NetworkTier
    clasp = small_scenario.clasp
    server_ids = [s.server_id
                  for s in list(small_scenario.catalog)[:8]]
    plan = clasp.orchestrator.deploy_differential(
        "europe-west2", server_ids, float(CAMPAIGN_START))
    try:
        assert len(plan.vms) == 2
        tiers = {vm.tier for vm in plan.vms}
        assert tiers == {NetworkTier.PREMIUM, NetworkTier.STANDARD}
        for _vm, chunk in plan.assignments:
            assert chunk == server_ids
    finally:
        clasp.orchestrator.teardown(plan, float(CAMPAIGN_START))


def test_deploy_differential_rejects_oversized_list(small_scenario):
    clasp = small_scenario.clasp
    ids = [s.server_id for s in list(small_scenario.catalog)[:18]]
    with pytest.raises(SchedulingError):
        clasp.orchestrator.deploy_differential(
            "europe-west4", ids, float(CAMPAIGN_START))


def test_deploy_rejects_empty(small_scenario):
    with pytest.raises(SchedulingError):
        small_scenario.clasp.orchestrator.deploy_topology(
            "us-west1", [], float(CAMPAIGN_START))
