"""bdrmap border inference: alias resolution + inference rules."""

import pytest

from repro.netsim.addressing import parse_ip
from repro.netsim.generator import GeneratorConfig, TopologyGenerator
from repro.netsim.routing import Router
from repro.rng import SeedTree
from repro.simclock import CAMPAIGN_START
from repro.tools.bdrmap import AliasResolver, Bdrmap
from repro.tools.prefix2as import build_prefix2as
from repro.tools.traceroute import Scamper


@pytest.fixture()
def mini_rig(mini_world):
    topo = mini_world.topology
    router = Router(topo, cloud_asn=mini_world.cloud_asn)
    p2a = build_prefix2as(topo)
    scamper = Scamper(topo, router, seeds=SeedTree(81),
                      no_response_rate=0.0)
    resolver = AliasResolver(topo, miss_rate=0.0, loopback_miss_rate=0.0,
                             seeds=SeedTree(82))
    bdrmap = Bdrmap(topo, scamper, p2a, mini_world.cloud_asn, resolver)
    return mini_world, topo, bdrmap


def test_alias_resolver_complete_at_zero_miss(mini_world):
    topo = mini_world.topology
    resolver = AliasResolver(topo, miss_rate=0.0, loopback_miss_rate=0.0)
    aliases = resolver.resolve(parse_ip("10.100.8.2"))
    assert aliases == topo.aliases_of(parse_ip("10.100.8.2"))


def test_alias_resolver_deterministic(mini_world):
    topo = mini_world.topology
    r1 = AliasResolver(topo, miss_rate=0.5, seeds=SeedTree(9))
    r2 = AliasResolver(topo, miss_rate=0.5, seeds=SeedTree(9))
    ip = parse_ip("10.100.8.2")
    assert r1.resolve(ip) == r2.resolve(ip)
    assert ip in r1.resolve(ip)


def test_alias_resolver_unknown_ip(mini_world):
    resolver = AliasResolver(mini_world.topology)
    assert resolver.resolve(parse_ip("198.51.100.1")) == \
        frozenset({parse_ip("198.51.100.1")})


def test_alias_resolver_validation(mini_world):
    with pytest.raises(ValueError):
        AliasResolver(mini_world.topology, miss_rate=1.0)


def test_mini_world_inference_exact(mini_rig):
    """With perfect aliases/responses, bdrmap finds exactly the cloud's
    borders, despite all of them being cloud-numbered."""
    world, topo, bdrmap = mini_rig
    result = bdrmap.run(world.pops["cloud-west"], CAMPAIGN_START,
                        flow_ids=(0, 1))
    truth = {r.far_ip for r in topo.interdomain_links(world.cloud_asn)}
    assert result.far_ips() <= truth
    # Probing ISP A (both prefixes), ISP B, and the transit's space
    # covers the peering links and at least one transit gateway.
    assert parse_ip("10.100.8.2") in result.far_ips() or \
        parse_ip("10.100.8.6") in result.far_ips()
    # Peering far sides must be attributed to ISP Alpha; transit far
    # sides may suffer the classic third-party-address ambiguity
    # (bdrmap's known error mode), so only the peering ones are pinned.
    for far_text in ("10.100.8.2", "10.100.8.6"):
        link = result.links.get(parse_ip(far_text))
        if link is not None:
            assert link.neighbor_asn == 400
    assert result.neighbors() <= {200, 300, 400}
    for link in result.links.values():
        assert link.via_alias  # cloud-numbered: alias rule must fire
        assert link.n_traces >= 1


def test_match_hop_via_aliases(mini_rig):
    world, topo, bdrmap = mini_rig
    result = bdrmap.run(world.pops["cloud-west"], CAMPAIGN_START,
                        flow_ids=(0,))
    far_ip = next(iter(result.far_ips()))
    assert result.match_hop(far_ip) == far_ip
    index = result.build_hop_index()
    assert index[far_ip] == far_ip
    # Any alias of the far router maps back to a known far IP.
    for alias in result.far_aliases[far_ip]:
        assert index.get(alias) is not None


def test_destination_guard(mini_rig):
    """A trace whose only foreign evidence is the probed address must
    not fabricate a border."""
    from repro.tools.traceroute import Hop, Traceroute
    world, topo, bdrmap = mini_rig
    # Hand-craft: cloud hops then the destination, with alias evidence
    # removed by pointing the prev hop at a pure-cloud router interface
    # (a cloud loopback).
    trace = Traceroute(
        src_ip=parse_ip("10.100.0.1"), dst_ip=parse_ip("10.50.24.1"),
        ts=0.0, flow_id=0, reached=True,
        hops=(
            Hop(1, parse_ip("10.100.0.2"), 1.0),   # cloud loopback
            Hop(2, parse_ip("10.50.24.1"), 9.0),   # destination
        ))
    assert bdrmap._infer_one(trace) is None


def test_generated_world_accuracy():
    """On a generated Internet, precision stays high and a large share
    of the cloud's borders is discovered."""
    config = GeneratorConfig(
        n_tier1=4, n_transit=8, n_access_isp=24, n_big_isp=3,
        n_hosting=8, n_education=3, n_business=4)
    net = TopologyGenerator(config, SeedTree(83)).generate()
    topo = net.topology
    router = Router(topo, cloud_asn=net.cloud_asn)
    p2a = build_prefix2as(topo)
    scamper = Scamper(topo, router, seeds=SeedTree(84))
    bdrmap = Bdrmap(topo, scamper, p2a, net.cloud_asn,
                    AliasResolver(topo, seeds=SeedTree(85)))
    src = topo.pop_of_as_in_city(net.cloud_asn, "The Dalles, US")
    result = bdrmap.run(src.pop_id, CAMPAIGN_START)
    truth = {r.far_ip for r in topo.interdomain_links(net.cloud_asn)}
    inferred = result.far_ips()
    assert inferred, "bdrmap found nothing"
    precision = len(inferred & truth) / len(inferred)
    recall = len(inferred & truth) / len(truth)
    assert precision > 0.85
    assert recall > 0.4
