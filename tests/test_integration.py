"""End-to-end integration: the full CLASP loop on a small world.

These tests run the complete methodology - pilot scan, selection,
deployment, a multi-day hourly campaign, congestion detection - and
check the cross-module invariants the paper's findings rest on.
"""

import numpy as np
import pytest

from repro.cloud.tiers import NetworkTier
from repro.core.congestion import detect, threshold_sweep
from repro.simclock import CAMPAIGN_START
from repro.units import HOUR


@pytest.fixture(scope="module")
def full_run(small_scenario):
    clasp = small_scenario.clasp
    selection = clasp.select_topology_servers("us-west1")
    plan = clasp.deploy_topology("us-west1", selection,
                                 budget_servers=34)
    dataset = clasp.run_campaign([plan], days=4)
    return small_scenario, selection, plan, dataset


def test_selection_to_campaign_consistency(full_run):
    scenario, selection, plan, dataset = full_run
    assert len(plan.server_ids) == 34
    assert set(plan.server_ids) <= set(selection.selected_ids())
    measured = {pair[1] for pair in dataset.pairs()}
    assert measured == set(plan.server_ids)


def test_hourly_cadence(full_run):
    _scenario, _selection, plan, dataset = full_run
    for pair in dataset.pairs()[:10]:
        series = dataset.table.series(pair)
        hours = np.unique((series["ts"] // HOUR).astype(int))
        # At most one sample per hour; nearly every hour covered.
        assert series["ts"].size == hours.size
        assert hours.size >= 4 * 24 - 4


def test_throughput_within_physical_caps(full_run):
    scenario, _selection, _plan, dataset = full_run
    for pair in dataset.pairs():
        series = dataset.table.series(pair)
        server = scenario.catalog.get(pair[1])
        assert series["download"].max() <= 1000.0
        # Reported values are rounded to 0.01 Mbps by the web UI.
        assert series["download"].max() <= \
            server.effective_cap_mbps + 0.01
        assert series["upload"].max() <= 100.0
        assert series["latency"].min() > 0


def test_congestion_detection_finds_story_networks(full_run):
    scenario, _selection, plan, dataset = full_run
    report = detect(dataset)
    congested_asns = {dataset.server_meta(pair[1]).asn
                      for pair in report.congested_pairs()}
    # At least one of the built-in congestion stories (or assigned
    # congested ISPs) shows up among detected servers.
    planted = set(scenario.internet.congested_asns)
    measured_asns = {dataset.server_meta(sid).asn
                     for sid in plan.server_ids}
    if planted & measured_asns:
        assert congested_asns & planted


def test_congestion_events_happen_at_local_peaks(full_run):
    """Detected events must concentrate in daytime/evening local hours,
    because that is when the planted profiles overload."""
    _scenario, _selection, _plan, dataset = full_run
    report = detect(dataset)
    if not report.events:
        pytest.skip("no events in this small sample")
    hours = np.array([e.local_hour for e in report.events])
    # Overnight (0-6 local) should hold a clear minority of events.
    overnight = ((hours >= 0) & (hours < 6)).mean()
    assert overnight < 0.35


def test_threshold_sweep_consistency(full_run):
    _scenario, _selection, _plan, dataset = full_run
    hs, day_frac, hour_frac = threshold_sweep(
        dataset, np.array([0.25, 0.5, 0.75]))
    report = detect(dataset, threshold=0.5)
    assert day_frac[1] == pytest.approx(report.congested_day_fraction)
    assert hour_frac[1] == pytest.approx(report.congested_hour_fraction)


def test_billing_tracks_whole_run(full_run):
    scenario, _selection, _plan, _dataset = full_run
    spend = scenario.clasp.platform.costs.spend_by_category()
    assert spend["vm_hours"] > 0
    assert spend["egress"] > 0


def test_differential_campaign_pairs(small_scenario):
    scenario = small_scenario
    clasp = scenario.clasp
    selection = clasp.select_differential_servers(
        "europe-west1",
        regions_for_study=list(scenario.differential_regions),
        target_count=6)
    if not selection.selected:
        pytest.skip("no differential candidates at this scale")
    plan = clasp.deploy_differential("europe-west1", selection)
    dataset = clasp.run_campaign([plan], days=2)
    prem = dataset.pairs(tier=NetworkTier.PREMIUM)
    std = dataset.pairs(tier=NetworkTier.STANDARD)
    assert len(prem) == len(std) == len(selection.selected)
    from repro.core.analysis import tier_comparison
    comparison = tier_comparison(dataset, "europe-west1")
    assert comparison.n_matched_hours > 0
