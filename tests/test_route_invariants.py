"""Route-structure invariants on a generated world.

Every expanded route must be physically consistent: consecutive PoPs
joined by the listed links in the listed directions, border crossings
aligned with the AS path, and no teleporting between cities.
"""

import pytest

from repro.netsim.generator import GeneratorConfig, TopologyGenerator
from repro.netsim.routing import GraphMode, Router, TierPolicy
from repro.rng import SeedTree


@pytest.fixture(scope="module")
def world():
    config = GeneratorConfig(
        n_tier1=4, n_transit=8, n_access_isp=24, n_big_isp=3,
        n_hosting=8, n_education=3, n_business=4)
    net = TopologyGenerator(config, SeedTree(123)).generate()
    return net, Router(net.topology, cloud_asn=net.cloud_asn)


def _routes_sample(net, router):
    topo = net.topology
    src = topo.pop_of_as_in_city(net.cloud_asn, "The Dalles, US")
    for asn in net.edge_asns[:25]:
        dst = topo.pops_of_as(asn)[0]
        for mode, first, last in (
                (GraphMode.FULL, TierPolicy.COLD_POTATO,
                 TierPolicy.HOT_POTATO),
                (GraphMode.STANDARD, TierPolicy.HOT_POTATO,
                 TierPolicy.HOT_POTATO)):
            yield router.route(src.pop_id, dst.pop_id, mode=mode,
                               first_as_policy=first,
                               last_as_policy=last)


def test_links_connect_consecutive_pops(world):
    net, router = world
    topo = net.topology
    for route in _routes_sample(net, router):
        for i, (link_id, direction) in enumerate(route.links):
            link = topo.link(link_id)
            here, there = route.pops[i], route.pops[i + 1]
            if direction == 0:
                assert (link.pop_a, link.pop_b) == (here, there)
            else:
                assert (link.pop_b, link.pop_a) == (here, there)


def test_pop_asns_follow_as_path(world):
    net, router = world
    topo = net.topology
    for route in _routes_sample(net, router):
        pop_asns = [topo.pop(p).asn for p in route.pops]
        # Collapse runs: must equal the AS path exactly.
        collapsed = [pop_asns[0]]
        for asn in pop_asns[1:]:
            if asn != collapsed[-1]:
                collapsed.append(asn)
        assert tuple(collapsed) == route.as_path


def test_border_crossings_match_as_path(world):
    net, router = world
    for route in _routes_sample(net, router):
        assert len(route.border_crossings) == len(route.as_path) - 1
        for record, (a, b) in zip(route.border_crossings,
                                  zip(route.as_path, route.as_path[1:])):
            assert {record.near_asn, record.far_asn} == {a, b}


def test_no_repeated_pops(world):
    net, router = world
    for route in _routes_sample(net, router):
        assert len(set(route.pops)) == len(route.pops), \
            "route visits a PoP twice (forwarding loop)"


def test_positive_delay(world):
    net, router = world
    topo = net.topology
    for route in _routes_sample(net, router):
        assert route.propagation_delay_ms(topo) > 0
