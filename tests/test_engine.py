"""The campaign engine: bus, events, lanes, and observers.

Unit tests pin the bus/observer contracts (registration-order
dispatch, FIFO nested emission, per-hour dataset flushing); the
campaign-level tests pin the properties the refactor promised: two
same-seed runs publish byte-identical event streams, the metrics
observer reconciles with the dataset's own counters (with and without
faults), and an exhausted-retry upload hour produces exactly one lost
row and zero intra-region charges.
"""

import json
from io import StringIO

import pytest

# The Test* event classes are aliased so pytest does not try to
# collect them as test classes.
from repro.engine import (BillingCharged, CampaignEngine, CampaignFinished,
                          DatasetObserver, EVENT_KINDS, EventBus, Histogram,
                          HourStarted, Lane, MetricsObserver, Observer,
                          ProgressObserver, TraceObserver, UploadAttempted,
                          event_payload)
from repro.engine import TestCompleted as CompletedEvent
from repro.engine import TestLost as LostEvent
from repro.engine import TestRetried as RetriedEvent
from repro.errors import ValidationError
from repro.experiments.scenario import build_scenario
from repro.faults import FaultPlan
from repro.simclock import CAMPAIGN_START
from repro.units import HOUR

T0 = float(CAMPAIGN_START)


# ----------------------------------------------------------------------
# events


def test_event_kinds_are_unique_and_stable():
    assert len(set(EVENT_KINDS)) == len(EVENT_KINDS)
    assert "test-completed" in EVENT_KINDS
    assert "hour-started" in EVENT_KINDS


def test_event_payload_keeps_scalars_drops_opaque():
    event = CompletedEvent(ts=T0, region="us-west1", vm_name="vm-0",
                          server_id="s1", tier="premium", latency_ms=12.5,
                          download_mbps=900.0, upload_mbps=400.0,
                          upload_bytes=1e8, artefact_bytes=1234,
                          record=object())
    payload = event_payload(event)
    assert payload["kind"] == "test-completed"
    assert payload["latency_ms"] == 12.5
    assert "record" not in payload
    json.dumps(payload)  # must be serializable


# ----------------------------------------------------------------------
# bus


def test_bus_dispatches_in_registration_order():
    bus = EventBus()
    calls = []
    bus.subscribe(lambda e: calls.append(("first", e.kind)))
    bus.subscribe(lambda e: calls.append(("second", e.kind)))
    bus.emit(HourStarted(ts=T0, hour_index=0))
    assert calls == [("first", "hour-started"), ("second", "hour-started")]
    assert bus.n_emitted == 1
    assert bus.n_subscribers == 2


def test_bus_nested_emit_is_fifo():
    bus = EventBus()
    seen = []

    def reemitter(event):
        if event.kind == "hour-started":
            bus.emit(BillingCharged(ts=event.ts, category="vm_hours",
                                    amount_usd=1.0))

    bus.subscribe(reemitter)
    bus.subscribe(lambda e: seen.append(e.kind))
    bus.emit(HourStarted(ts=T0, hour_index=0))
    # The nested event is dispatched after the in-flight event finishes
    # its full subscriber pass, never interleaved.
    assert seen == ["hour-started", "billing-charged"]
    assert bus.n_emitted == 2


def test_bus_accepts_observer_objects_and_rejects_junk():
    bus = EventBus()
    observer = MetricsObserver()
    assert bus.subscribe(observer) is observer
    with pytest.raises(ValidationError):
        bus.subscribe(42)


def test_observer_base_dispatches_by_kind():
    class Probe(Observer):
        def __init__(self):
            self.hours = []

        def on_hour_started(self, event):
            self.hours.append(event.hour_index)

    probe = Probe()
    probe.on_event(HourStarted(ts=T0, hour_index=3))
    probe.on_event(CampaignFinished(ts=T0, n_hours=1))  # no hook: ignored
    assert probe.hours == [3]


# ----------------------------------------------------------------------
# lanes + engine loop


def test_lane_replacement_names_count_up():
    lane = Lane(name="vm-7", region="us-west1", schedule=None, vm=None,
                ready_ts=T0)
    assert lane.next_replacement_name() == "vm-7-r1"
    assert lane.next_replacement_name() == "vm-7-r2"
    assert lane.replacements == 2


def test_engine_validates_shape():
    bus = EventBus()
    with pytest.raises(ValidationError):
        CampaignEngine([], stepper=None, bus=bus, start_ts=T0, n_hours=0)
    with pytest.raises(ValidationError):
        CampaignEngine([], stepper=None, bus=bus, start_ts=T0 + 1800.0,
                       n_hours=1)


def test_engine_steps_every_lane_every_hour_in_order():
    lanes = [Lane(name=f"vm-{i}", region="r", schedule=None, vm=None,
                  ready_ts=T0) for i in range(2)]
    steps = []

    class Recorder:
        def step(self, lane, hour_start):
            steps.append((lane.name, hour_start))

    bus = EventBus()
    kinds = []
    bus.subscribe(lambda e: kinds.append(e.kind))
    engine = CampaignEngine(lanes, stepper=Recorder(), bus=bus,
                            start_ts=T0, n_hours=3)
    assert engine.end_ts == T0 + 3 * HOUR
    engine.run()
    assert steps == [(f"vm-{i}", T0 + h * HOUR)
                     for h in range(3) for i in range(2)]
    assert kinds == ["hour-started"] * 3 + ["campaign-finished"]
    assert engine.clock.now == T0 + 2 * HOUR  # advanced to the last hour


# ----------------------------------------------------------------------
# dataset observer (against a minimal duck-typed dataset)


class _FakeDataset:
    def __init__(self):
        self.batches = []
        self.lost = []
        self.failed_tests = 0
        self.retried_tests = 0

    def extend(self, records):
        self.batches.append(list(records))

    def mark_lost(self, ts, region, vm_name, server_id, reason):
        self.lost.append((ts, region, vm_name, server_id, reason))


def _completed(ts, record):
    return CompletedEvent(ts=ts, region="r", vm_name="vm", server_id="s",
                         tier="premium", latency_ms=1.0, download_mbps=1.0,
                         upload_mbps=1.0, upload_bytes=1.0,
                         artefact_bytes=1, record=record)


def test_dataset_observer_batches_per_hour():
    ds = _FakeDataset()
    obs = DatasetObserver(ds)
    obs.on_event(HourStarted(ts=T0, hour_index=0))
    obs.on_event(_completed(T0, "rec-a"))
    obs.on_event(_completed(T0 + 60, "rec-b"))
    assert ds.batches == []  # buffered until the next hour boundary
    obs.on_event(HourStarted(ts=T0 + HOUR, hour_index=1))
    assert ds.batches == [["rec-a", "rec-b"]]
    obs.on_event(_completed(T0 + HOUR, "rec-c"))
    obs.on_event(CampaignFinished(ts=T0 + 2 * HOUR, n_hours=2))
    assert ds.batches == [["rec-a", "rec-b"], ["rec-c"]]


def test_dataset_observer_counters_from_events():
    ds = _FakeDataset()
    obs = DatasetObserver(ds)
    obs.on_event(RetriedEvent(ts=T0, region="r", vm_name="vm",
                             server_id="s", attempts=2))
    obs.on_event(LostEvent(ts=T0, region="r", vm_name="vm",
                          server_id="s", reason="speedtest"))
    obs.on_event(LostEvent(ts=T0, region="r", vm_name="vm",
                          server_id="*", reason="upload"))
    assert ds.retried_tests == 1
    assert ds.failed_tests == 1  # only speedtest losses are failures
    assert [entry[-1] for entry in ds.lost] == ["speedtest", "upload"]


def test_dataset_observer_requires_record_payload():
    obs = DatasetObserver(_FakeDataset())
    with pytest.raises(ValidationError):
        obs.on_event(_completed(T0, record=None))


# ----------------------------------------------------------------------
# histogram + metrics observer


def test_histogram_buckets_and_stats():
    hist = Histogram(n_buckets=4)
    for value in (0.0, 0.5, 1.0, 3.0, 1000.0):
        hist.add(value)
    snap = hist.snapshot()
    assert snap["count"] == 5
    assert snap["max"] == 1000.0
    assert snap["buckets"]["<1"] == 2
    assert snap["buckets"]["<2"] == 1
    assert sum(snap["buckets"].values()) == 5  # overflow capped, not lost
    assert hist.mean == pytest.approx(1004.5 / 5)
    with pytest.raises(ValidationError):
        hist.add(-1.0)
    with pytest.raises(ValidationError):
        Histogram(n_buckets=0)


def test_metrics_observer_counts_and_billing():
    obs = MetricsObserver()
    obs.on_event(_completed(T0, "rec"))
    obs.on_event(LostEvent(ts=T0, region="r", vm_name="vm",
                          server_id="s", reason="speedtest"))
    obs.on_event(BillingCharged(ts=T0, category="egress", amount_usd=2.0))
    obs.on_event(BillingCharged(ts=T0, category="egress", amount_usd=3.0))
    snap = obs.snapshot()
    assert snap["events"]["test-completed"] == 1
    assert obs.count("test-lost") == 1
    assert snap["lost_by_reason"] == {"speedtest": 1}
    assert snap["usd_by_category"] == {"egress": 5.0}
    assert snap["latency_ms"]["test-completed"]["count"] == 1
    assert snap["bytes"]["test-completed"]["count"] == 1


# ----------------------------------------------------------------------
# trace + progress observers


def test_trace_observer_writes_json_lines(tmp_path):
    path = tmp_path / "trace.jsonl"
    with TraceObserver(str(path)) as trace:
        trace.on_event(HourStarted(ts=T0, hour_index=0))
        trace.on_event(_completed(T0, object()))  # opaque record
    lines = path.read_text().splitlines()
    assert trace.n_written == len(lines) == 2
    first, second = (json.loads(line) for line in lines)
    assert first["kind"] == "hour-started"
    assert second["kind"] == "test-completed"
    assert "record" not in second


def test_trace_observer_accepts_write_object():
    sink = StringIO()
    trace = TraceObserver(sink)
    trace.on_event(HourStarted(ts=T0, hour_index=0))
    trace.close()  # caller owns the handle: close() must not close it
    assert not sink.closed
    assert json.loads(sink.getvalue())["hour_index"] == 0


def test_progress_observer_ticks():
    lines = []
    obs = ProgressObserver(echo=lines.append, every_hours=2)
    obs.on_event(_completed(T0, "rec"))
    obs.on_event(HourStarted(ts=T0, hour_index=0))
    obs.on_event(HourStarted(ts=T0 + HOUR, hour_index=1))  # off-cadence
    obs.on_event(CampaignFinished(ts=T0 + 2 * HOUR, n_hours=2))
    assert len(lines) == 2
    assert "1 tests" in lines[0]
    assert "finished 2 hours" in lines[1]
    with pytest.raises(ValidationError):
        ProgressObserver(every_hours=0)


# ----------------------------------------------------------------------
# campaign-level properties


class _EventRecorder(Observer):
    """Keeps every event object, in dispatch order."""

    def __init__(self):
        self.events = []

    def on_event(self, event):
        self.events.append(event)


def _run_campaign(observers, fault_plan=None, seed=23, days=1,
                  n_servers=6):
    scenario = build_scenario(seed=seed, scale=0.05, stories=False,
                              faults=fault_plan)
    clasp = scenario.clasp
    ids = [s.server_id
           for s in scenario.catalog.servers(country="US")[:n_servers]]
    plan = clasp.orchestrator.deploy_topology("us-west1", ids, T0)
    dataset = clasp.run_campaign([plan], days=days, observers=observers)
    return dataset, clasp


def test_same_seed_runs_publish_identical_event_streams():
    streams = []
    for _ in range(2):
        sink = StringIO()
        _run_campaign([TraceObserver(sink)],
                      fault_plan=FaultPlan.default())
        streams.append(sink.getvalue())
    assert streams[0]  # non-empty
    assert streams[0] == streams[1]


@pytest.mark.parametrize("fault_plan", [None, FaultPlan.default()],
                         ids=["faults-off", "faults-default"])
def test_metrics_snapshot_reconciles_with_dataset(fault_plan):
    metrics = MetricsObserver()
    dataset, clasp = _run_campaign([metrics], fault_plan=fault_plan)
    snap = metrics.snapshot()
    assert snap["events"].get("test-completed", 0) == dataset.completed_tests
    assert snap["events"].get("test-retried", 0) == dataset.retried_tests
    assert snap["events"].get("test-lost", 0) == dataset.lost_tests
    assert snap["lost_by_reason"] == dataset.lost_by_reason()
    assert (snap["lost_by_reason"].get("speedtest", 0)
            == dataset.failed_tests)
    assert dataset.completed_tests > 0
    # Billing flowed through the bus: every dollar the cost tracker saw
    # was also published as a BillingCharged event (intra-region
    # transfer is priced at $0, so equality - not positivity - is the
    # meaningful check there).
    spend = clasp.platform.costs.spend_by_category()
    for category, usd in snap["usd_by_category"].items():
        assert usd == pytest.approx(spend[category])
    assert snap["usd_by_category"]["vm_hours"] > 0
    assert snap["usd_by_category"]["egress"] > 0


def test_exhausted_upload_hour_loses_once_and_charges_nothing():
    recorder = _EventRecorder()
    dataset, _ = _run_campaign(
        [recorder],
        fault_plan=FaultPlan(upload_failure_rate=0.95, max_retries=1))
    uploads = [e for e in recorder.events
               if isinstance(e, UploadAttempted)]
    by_key = {}
    for event in uploads:
        by_key.setdefault(event.key, []).append(event)
    exhausted = {key for key, events in by_key.items()
                 if not any(e.ok for e in events)}
    assert exhausted  # the rate guarantees some hours run dry
    # Every failed attempt was still published (bounded retry budget).
    for key in exhausted:
        assert len(by_key[key]) == 2  # max_retries + 1
    # Exactly one lost row per exhausted hour, no duplicates.
    upload_losses = [rec for rec in dataset.lost
                     if rec.reason == "upload"]
    assert len(upload_losses) == len(exhausted)
    assert all(rec.server_id == "*" for rec in upload_losses)
    # Intra-region transfer is only ever billed on a successful upload,
    # so exhausted hours cost nothing.
    intra_charges = [e for e in recorder.events
                     if isinstance(e, BillingCharged)
                     and e.category == "intra_region"]
    ok_uploads = [e for e in uploads if e.ok]
    assert len(intra_charges) == len(ok_uploads)
