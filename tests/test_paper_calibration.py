"""Calibration regression: the paper's bands at a fixed small scale.

These are the guardrails for the experiment scenario: if a substrate
change drifts the headline statistics out of (a widened version of)
the paper's bands, these tests catch it before the benchmarks do.
Kept at a small scale/duration so the whole file stays under a minute.
"""

import numpy as np
import pytest

from repro.core.analysis import performance_scatter
from repro.core.congestion import choose_threshold_elbow, threshold_sweep
from repro.experiments.runner import ExperimentCache


@pytest.fixture(scope="module")
def calibrated():
    cache = ExperimentCache(seed=7, scale=0.12)
    dataset = cache.topology_dataset(days=8)
    return cache, dataset


def test_congested_day_band(calibrated):
    _cache, dataset = calibrated
    hs, day_frac, hour_frac = threshold_sweep(dataset,
                                              np.array([0.25, 0.5]))
    # Paper: 71-90% at H=0.25 and 11-30% at H=0.5 (widened for the
    # small sample).
    assert 0.55 <= day_frac[0] <= 0.97
    assert 0.08 <= day_frac[1] <= 0.40
    # Paper: 1.3-3% of s-hours at H=0.5 (widened).
    assert 0.008 <= hour_frac[1] <= 0.05


def test_elbow_lands_near_half(calibrated):
    _cache, dataset = calibrated
    hs, day_frac, _ = threshold_sweep(dataset,
                                      np.round(np.arange(0.05, 1.0,
                                                         0.05), 2))
    chosen = choose_threshold_elbow(hs, day_frac)
    assert 0.3 <= chosen <= 0.65


def test_download_band(calibrated):
    _cache, dataset = calibrated
    points = performance_scatter(dataset, min_samples=100)
    p95 = np.array([p.p95_download_mbps for p in points])
    assert p95.size > 30
    in_band = ((p95 >= 200) & (p95 <= 600)).mean()
    assert in_band >= 0.55           # paper: ~80%
    assert p95.max() <= 1000.0       # nothing saturates the shaping
    assert (p95 < 100).mean() <= 0.1


def test_upload_pinned_at_cap(calibrated):
    _cache, dataset = calibrated
    p95_uploads = [np.percentile(dataset.table.series(p)["upload"], 95)
                   for p in dataset.pairs()]
    assert np.median(p95_uploads) > 85.0
    assert max(p95_uploads) <= 100.0


def test_story_networks_detected(calibrated):
    """The named story ISPs must show up congested with the planted
    diurnal shape."""
    from repro.core.congestion import PAPER_THRESHOLD, detect
    cache, dataset = calibrated
    report = detect(dataset, threshold=PAPER_THRESHOLD)
    stories = cache.scenario.story_asns
    events_by_asn = {}
    for event in report.events:
        asn = dataset.server_meta(event.pair[1]).asn
        events_by_asn.setdefault(asn, []).append(event.local_hour)
    measured_asns = {dataset.server_meta(p[1]).asn
                     for p in report.pair_hours}
    story_hits = 0
    for label in ("cox", "smarterbroadband", "unwired", "suddenlink"):
        asn = stories[label]
        if asn not in measured_asns:
            continue
        hours = events_by_asn.get(asn, [])
        if hours:
            story_hits += 1
            if label == "cox":
                # Daytime congestion story: median event hour in
                # late morning - early evening.
                assert 9 <= np.median(hours) <= 19
            if label in ("unwired", "suddenlink"):
                assert 17 <= np.median(hours) <= 23
    assert story_hits >= 2, "story networks produced no events"
