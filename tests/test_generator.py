"""Synthetic Internet generator invariants."""

import pytest

from repro.netsim.asn import ASType
from repro.netsim.generator import (
    GeneratedInternet,
    GeneratorConfig,
    TopologyGenerator,
)
from repro.netsim.routing import GraphMode, Router
from repro.netsim.topology import LinkKind
from repro.rng import SeedTree


@pytest.fixture(scope="module")
def small_net() -> GeneratedInternet:
    config = GeneratorConfig(
        n_tier1=4, n_transit=8, n_access_isp=40, n_big_isp=4,
        n_hosting=14, n_education=4, n_business=6)
    return TopologyGenerator(config, SeedTree(21)).generate()


def test_population_counts(small_net):
    assert len(small_net.tier1_asns) == 4
    assert len(small_net.transit_asns) == 8
    assert len(small_net.access_isp_asns) == 40
    assert len(small_net.big_isp_asns) == 4
    assert len(small_net.hosting_asns) == 14
    assert small_net.cloud_asn == 15169
    assert len(small_net.edge_asns) == 40 + 14 + 4 + 6


def test_determinism():
    config = GeneratorConfig(n_tier1=4, n_transit=6, n_access_isp=20,
                             n_big_isp=3, n_hosting=8, n_education=3,
                             n_business=4)
    a = TopologyGenerator(config, SeedTree(5)).generate()
    b = TopologyGenerator(config, SeedTree(5)).generate()
    assert a.topology.stats() == b.topology.stats()
    assert a.congested_asns == b.congested_asns
    links_a = sorted((r.near_asn, r.far_asn, r.far_ip)
                     for r in a.topology.interdomain_links())
    links_b = sorted((r.near_asn, r.far_asn, r.far_ip)
                     for r in b.topology.interdomain_links())
    assert links_a == links_b


def test_every_as_has_pops_and_prefixes(small_net):
    topo = small_net.topology
    for asn, as_obj in topo.ases.items():
        router_pops = [p for p in topo.pops_of_as(asn) if not p.is_host]
        assert router_pops, f"AS{asn} has no PoPs"
        assert as_obj.prefixes, f"AS{asn} announces nothing"


def test_backbones_connected(small_net):
    """Every multi-PoP AS's backbone must be internally connected."""
    topo = small_net.topology
    router = Router(topo, cloud_asn=small_net.cloud_asn)
    for asn in topo.ases:
        pops = [p for p in topo.pops_of_as(asn) if not p.is_host]
        if len(pops) < 2:
            continue
        table = router._intra_table(asn, pops[0].pop_id)
        for pop in pops[1:]:
            assert pop.pop_id in table, \
                f"AS{asn} PoP {pop.pop_id} unreachable on its backbone"


def test_interdomain_links_have_interfaces(small_net):
    topo = small_net.topology
    for record in topo.interdomain_links():
        link = topo.link(record.link_id)
        assert link.kind is LinkKind.INTERDOMAIN
        assert link.iface_a is not None and link.iface_b is not None
        assert topo.operator_of_ip(record.far_ip) == record.far_asn


def test_cloud_border_links_cloud_numbered(small_net):
    """The cloud numbers its interconnects from its own space."""
    topo = small_net.topology
    for record in topo.interdomain_links(small_net.cloud_asn):
        iface = topo.interface_by_ip(record.far_ip)
        assert iface.address_asn == small_net.cloud_asn


def test_valley_free_reachability(small_net):
    """The cloud can reach every edge AS in both graph modes."""
    router = Router(small_net.topology, cloud_asn=small_net.cloud_asn)
    from repro.errors import NoRouteError
    unreachable = {GraphMode.FULL: 0, GraphMode.STANDARD: 0}
    for mode in unreachable:
        for asn in small_net.edge_asns:
            try:
                router.as_path(small_net.cloud_asn, asn, mode)
            except NoRouteError:
                unreachable[mode] += 1
    assert unreachable[GraphMode.FULL] == 0
    assert unreachable[GraphMode.STANDARD] == 0


def test_standard_paths_avoid_cloud_peering(small_net):
    """Standard-tier paths transit a cloud provider, never a peer edge."""
    topo = small_net.topology
    router = Router(topo, cloud_asn=small_net.cloud_asn)
    transits = set(small_net.cloud_transit_asns)
    for asn in small_net.edge_asns[:30]:
        path = router.as_path(small_net.cloud_asn, asn, GraphMode.STANDARD)
        assert path[1] in transits, path


def test_congestion_profiles_assigned(small_net):
    """Congested ISPs' ingress directions peak above the loss onset."""
    topo = small_net.topology
    util = small_net.utilization
    congested_peaks = []
    for asn in small_net.congested_asns:
        for record in topo.interdomain_between(small_net.cloud_asn, asn):
            profile = util.profile(record.link_id, 1)
            congested_peaks.append(profile.peak_mean())
    if congested_peaks:  # congested ASes without direct peering exist
        assert max(congested_peaks) > 0.9
        assert sum(p > 0.8 for p in congested_peaks) >= \
            len(congested_peaks) * 0.5


def test_story_isp(small_net):
    gen = TopologyGenerator(
        GeneratorConfig(n_tier1=4, n_transit=8, n_access_isp=10,
                        n_big_isp=2, n_hosting=4, n_education=2,
                        n_business=2),
        SeedTree(77))
    net = gen.generate()
    story = gen.add_story_isp(
        net, "Testy Cable",
        home_city_keys=["San Diego, US", "Las Vegas, US"],
        congestion="daytime")
    topo = net.topology
    assert topo.as_of(story.asn).name == "Testy Cable"
    assert story.asn in net.congested_asns
    assert story.asn in net.access_isp_asns
    peering = topo.interdomain_between(net.cloud_asn, story.asn)
    assert peering
    # The ingress profiles follow the daytime story shape.
    profile = net.utilization.profile(peering[0].link_id, 1)
    assert any(abs(b.center_hour - 13.0) < 1.0 for b in profile.bumps)
    # It is routable from the cloud.
    router = Router(topo, cloud_asn=net.cloud_asn)
    assert router.as_path(net.cloud_asn, story.asn) == \
        (net.cloud_asn, story.asn)


def test_story_isp_pinned_peering(small_net):
    gen = TopologyGenerator(
        GeneratorConfig(n_tier1=4, n_transit=8, n_access_isp=10,
                        n_big_isp=2, n_hosting=4, n_education=2,
                        n_business=2),
        SeedTree(78))
    net = gen.generate()
    story = gen.add_story_isp(
        net, "Far Peering ISP",
        home_city_keys=["Sydney, AU"],
        peering_city_keys=["Los Angeles, US"])
    peering = net.topology.interdomain_between(net.cloud_asn, story.asn)
    assert {r.city_key for r in peering} == {"Los Angeles, US"}


def test_config_validation():
    with pytest.raises(Exception):
        GeneratorConfig(n_big_isp=100, n_access_isp=10)
