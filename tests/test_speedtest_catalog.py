"""Speed test server catalog and crawler views."""

import pytest

from repro.netsim.generator import GeneratorConfig, TopologyGenerator
from repro.rng import SeedTree
from repro.speedtest.catalog import (
    CatalogConfig,
    ServerCatalog,
    build_catalog,
)
from repro.speedtest.server import Platform
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def world():
    config = GeneratorConfig(
        n_tier1=4, n_transit=8, n_access_isp=30, n_big_isp=3,
        n_hosting=10, n_education=4, n_business=5)
    net = TopologyGenerator(config, SeedTree(51)).generate()
    catalog = build_catalog(
        net, CatalogConfig(n_us_servers=120, n_global_servers=30),
        SeedTree(52))
    return net, catalog


def test_catalog_size_and_split(world):
    _net, catalog = world
    us = catalog.servers(country="US")
    non_us = [s for s in catalog if s.country != "US"]
    assert len(us) >= 100
    assert len(non_us) >= 15
    assert len(catalog) == len(us) + len(non_us)


def test_platform_mix(world):
    _net, catalog = world
    counts = {p: len(catalog.servers(platform=p)) for p in Platform}
    assert counts[Platform.OOKLA] > counts[Platform.MLAB] > 0
    assert counts[Platform.COMCAST] > 0


def test_server_attachment(world):
    net, catalog = world
    topo = net.topology
    for server in list(catalog)[:20]:
        host = topo.pop(server.host_pop_id)
        assert host.is_host
        assert host.asn == server.asn
        assert topo.resolve_ip_to_pop(server.ip).pop_id == server.host_pop_id
        link = topo.link(server.access_link_id)
        assert link.capacity_mbps >= 1000.0  # "at least 1 Gbps"
        # The access link carries a load profile.
        assert net.utilization.has_profile(server.access_link_id, 0)


def test_service_caps(world):
    _net, catalog = world
    for server in catalog:
        assert 0 < server.service_cap_mbps <= server.capacity_mbps
        assert server.effective_cap_mbps == pytest.approx(
            min(server.service_cap_mbps, server.capacity_mbps))


def test_crawl_exposes_no_topology_handles(world):
    _net, catalog = world
    records = catalog.crawl(Platform.OOKLA)
    assert records
    sample = records[0]
    assert not hasattr(sample, "host_pop_id")
    assert not hasattr(sample, "asn")
    assert sample.ip_text.count(".") == 3
    assert sample.city
    all_records = catalog.crawl_all()
    assert len(all_records) == len(catalog)


def test_catalog_lookups(world):
    _net, catalog = world
    server = next(iter(catalog))
    assert catalog.get(server.server_id) is server
    assert catalog.by_ip(server.ip) is server
    assert catalog.by_ip(1) is None
    with pytest.raises(ConfigError):
        catalog.get("nope-00000")


def test_distinct_asns(world):
    _net, catalog = world
    assert catalog.distinct_asns("US") > 20


def test_ensure_asns():
    config = GeneratorConfig(
        n_tier1=4, n_transit=8, n_access_isp=12, n_big_isp=2,
        n_hosting=4, n_education=2, n_business=2)
    net = TopologyGenerator(config, SeedTree(53)).generate()
    target = net.access_isp_asns[0]
    catalog = build_catalog(
        net, CatalogConfig(n_us_servers=10, n_global_servers=4),
        SeedTree(54), ensure_asns={target: 3})
    assert sum(1 for s in catalog if s.asn == target) >= 3


def test_duplicate_ids_rejected(world):
    _net, catalog = world
    servers = list(catalog)[:2]
    with pytest.raises(ConfigError):
        ServerCatalog([servers[0], servers[0]])


def test_catalog_config_validation():
    with pytest.raises(ConfigError):
        CatalogConfig(platform_shares={Platform.OOKLA: 0.5})
