"""Experiment-module helpers that the smoke tests don't reach."""

import numpy as np
import pytest

from repro.experiments.fig7 import Fig7Result, ascii_map
from repro.experiments.table1 import PAPER_ROWS, Table1Result, Table1Row


def test_ascii_map_places_points():
    text = ascii_map([(0.0, 0.0)], marker="x", region=(45.0, -120.0),
                     width=36, height=10)
    lines = text.splitlines()
    assert len(lines) == 10
    assert any("x" in line for line in lines)
    assert any("R" in line for line in lines)
    # Equator point lands near the vertical middle.
    x_row = next(i for i, line in enumerate(lines) if "x" in line)
    assert 3 <= x_row <= 6


def test_ascii_map_clamps_out_of_frame():
    text = ascii_map([(89.9, 179.9), (-89.9, -179.9)], width=20, height=6)
    lines = text.splitlines()
    assert "o" in lines[0]
    assert "o" in lines[-1]


def test_fig7_result_helpers():
    result = Fig7Result(
        topology_points={"us-west1": [(40.0, -100.0), (35.0, -90.0)]},
        differential_points={"europe-west1": [(50.0, 4.0), (19.0, 72.0),
                                              (-33.0, 151.0)]},
        region_points={"us-west1": (45.0, -121.0)})
    assert result.all_us("us-west1")
    assert result.countries_spanned("europe-west1") == 3
    result.topology_points["us-west1"].append((51.0, -0.1))  # London
    assert not result.all_us("us-west1")


def test_table1_result_helpers():
    rows = [Table1Row(region=r, n_interdomain_links=1000,
                      n_links_traversed=200, n_servers_measured=50,
                      n_links_covered=50, coverage=50 / 200,
                      shared_fraction=0.8)
            for r in ("us-west1", "us-east1")]
    result = Table1Result(rows=rows)
    assert set(result.by_region()) == {"us-west1", "us-east1"}
    assert result.coverage_range == (0.25, 0.25)


def test_paper_rows_match_table1_in_paper():
    # Transcribed values must stay faithful to the paper's Table 1.
    assert PAPER_ROWS["us-west1"] == (5293, 325, 106)
    assert PAPER_ROWS["us-east1"] == (6217, 265, 184)
    for links, traversed, measured in PAPER_ROWS.values():
        assert measured <= traversed <= links
    coverages = [m / t for _l, t, m in PAPER_ROWS.values()]
    assert min(coverages) == pytest.approx(0.207, abs=0.01)
    assert max(coverages) == pytest.approx(0.694, abs=0.01)


def test_fig2_result_helpers():
    from repro.experiments.fig2 import Fig2Result
    h = np.array([0.25, 0.5, 0.75])
    result = Fig2Result(
        thresholds=h,
        day_fractions={"us-west1": np.array([0.8, 0.2, 0.1]),
                       "us-east1": np.array([0.9, 0.3, 0.15])},
        hour_fractions={"us-west1": np.array([0.1, 0.02, 0.01]),
                        "us-east1": np.array([0.12, 0.03, 0.02])},
        chosen_threshold=0.5)
    assert result.at("us-west1", 0.5) == (0.2, 0.02)
    assert result.day_range_at(0.5) == (0.2, 0.3)
    assert result.hour_range_at(0.5) == (0.02, 0.03)
    series = result.figure_series()
    assert len(series) == 4
    labels = {s.label for s in series}
    assert "2a us-west1" in labels and "2b us-east1" in labels


def test_fig5_figure_series_labels():
    from repro.core.analysis import TierComparison
    from repro.core.selection.differential import (
        DifferentialSelection, LatencyClass)
    from repro.experiments.fig5 import Fig5Result
    result = Fig5Result(
        comparison=TierComparison(region="europe-west1"),
        selection=DifferentialSelection(region="europe-west1"))
    result.deltas_by_class = {
        "download": {LatencyClass.COMPARABLE: np.array([-0.1, 0.2])},
        "upload": {LatencyClass.COMPARABLE: np.array([0.0, 0.05])},
        "latency": {LatencyClass.PREMIUM_LOWER: np.array([-0.5])},
    }
    series = result.figure_series()
    labels = {s.label for s in series}
    assert "5a comparable" in labels
    assert "5b comparable" in labels
    assert "5c premium_lower" in labels
    assert all(s.kind == "cdf" for s in series)
