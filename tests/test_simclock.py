"""Simulated clock and local-time helpers."""

import datetime

import pytest

from repro import simclock
from repro.units import DAY, HOUR


def test_campaign_window():
    start = simclock.utc_datetime(simclock.CAMPAIGN_START)
    end = simclock.utc_datetime(simclock.CAMPAIGN_END)
    assert (start.year, start.month, start.day) == (2020, 5, 1)
    assert (end.year, end.month, end.day) == (2020, 10, 1)
    assert (simclock.CAMPAIGN_END - simclock.CAMPAIGN_START) == 153 * DAY


def test_utc_roundtrip():
    when = datetime.datetime(2020, 7, 4, 12, 30,
                             tzinfo=datetime.timezone.utc)
    assert simclock.utc_datetime(simclock.from_utc_datetime(when)) == when


def test_from_naive_datetime_rejected():
    with pytest.raises(ValueError):
        simclock.from_utc_datetime(datetime.datetime(2020, 5, 1))


def test_hour_of_day_with_offset():
    ts = simclock.CAMPAIGN_START  # 00:00 UTC
    assert simclock.hour_of_day(ts) == 0
    assert simclock.hour_of_day(ts, utc_offset_hours=-8) == 16
    assert simclock.hour_of_day(ts, utc_offset_hours=5.5) == 5


def test_local_day_index_shifts_at_midnight():
    # 2020-05-01 02:00 UTC is still 2020-04-30 in Pacific time.
    ts = simclock.CAMPAIGN_START + 2 * HOUR
    assert simclock.day_index(ts) == 0
    assert simclock.local_day_index(ts, -8) == -1


def test_is_weekend():
    # 2020-05-01 was a Friday; 2020-05-02 a Saturday.
    friday = simclock.CAMPAIGN_START
    saturday = friday + DAY
    assert not simclock.is_weekend(friday)
    assert simclock.is_weekend(saturday)


def test_clock_advances_monotonically():
    clock = simclock.SimClock()
    t0 = clock.now
    clock.advance(10)
    assert clock.now == t0 + 10
    with pytest.raises(ValueError):
        clock.advance(-1)
    with pytest.raises(ValueError):
        clock.advance_to(t0)


def test_next_hour_boundary():
    clock = simclock.SimClock(simclock.CAMPAIGN_START + 10)
    assert clock.next_hour_boundary() == simclock.CAMPAIGN_START + HOUR
    clock2 = simclock.SimClock(simclock.CAMPAIGN_START)
    # Exactly on a boundary: the *next* boundary is an hour later.
    assert clock2.next_hour_boundary() == simclock.CAMPAIGN_START + HOUR


def test_format_ts():
    text = simclock.format_ts(simclock.CAMPAIGN_START)
    assert text == "2020-05-01 00:00"
    text_local = simclock.format_ts(simclock.CAMPAIGN_START, -8)
    assert text_local == "2020-04-30 16:00"
