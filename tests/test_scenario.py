"""Scenario builder: stories, scaling, differential story surgery."""

import pytest

from repro.experiments.scenario import (
    ScenarioConfig,
    apply_differential_story,
    build_scenario,
)


def test_scenario_config_validation():
    with pytest.raises(ValueError):
        ScenarioConfig(scale=0.001)
    with pytest.raises(ValueError):
        ScenarioConfig(scale=10.0)


def test_scenario_structure(small_scenario):
    scenario = small_scenario
    assert scenario.catalog is scenario.clasp.catalog
    assert len(scenario.catalog) > 50
    assert set(scenario.table1_regions) <= set(scenario.us_regions)
    assert "europe-west1" in scenario.differential_regions


def test_stories_installed(small_scenario):
    scenario = small_scenario
    topo = scenario.internet.topology
    stories = scenario.story_asns
    for label in ("cox", "smarterbroadband", "unwired", "suddenlink",
                  "cogitant", "vortex", "joister", "telstar"):
        assert label in stories
    assert topo.as_of(stories["cox"]).name == "Coxcast Cable"
    assert "San Diego, US" in topo.as_of(stories["cox"]).pop_cities
    assert topo.as_of(stories["cogitant"]).name == \
        "Cogitant Communications"
    # Cox-analog servers exist in the catalog (ensure_asns).
    cox_servers = [s for s in scenario.catalog
                   if s.asn == stories["cox"]]
    assert len(cox_servers) >= 3
    # Telstar's cloud interconnect is pinned to the U.S. west coast.
    telstar_links = topo.interdomain_between(
        scenario.internet.cloud_asn, stories["telstar"])
    assert {r.city_key for r in telstar_links} == {"Los Angeles, US"}


def test_scenario_deterministic():
    a = build_scenario(seed=99, scale=0.05)
    b = build_scenario(seed=99, scale=0.05)
    assert a.internet.topology.stats() == b.internet.topology.stats()
    assert [s.server_id for s in a.catalog] == \
        [s.server_id for s in b.catalog]
    assert a.story_asns == b.story_asns


def test_scenario_without_stories():
    scenario = build_scenario(seed=99, scale=0.05, stories=False)
    assert scenario.story_asns == {}


def test_apply_differential_story(small_scenario):
    scenario = small_scenario
    selection = scenario.clasp.select_differential_servers(
        "europe-west1",
        regions_for_study=list(scenario.differential_regions),
        target_count=8)
    apply_differential_story(scenario, selection, lossy_targets=3)
    topo = scenario.internet.topology
    lossy_links = 0
    warm_links = 0
    for server, _cand in selection.selected:
        for record in topo.interdomain_between(
                scenario.internet.cloud_asn, server.asn):
            profile = scenario.internet.utilization.profile(
                record.link_id, 1)
            if profile.base >= 0.7:
                warm_links += 1
            if topo.link(record.link_id).burst_loss > 0:
                lossy_links += 1
    assert warm_links > 0
    assert lossy_links > 0
