"""Provider conformance suite.

Every registered :class:`CloudProvider` - current and future - must
satisfy the same contract: total tier routing over its own tier
vocabulary, failing lookups that raise :class:`ValidationError`,
non-negative billing, and a campaign that runs end to end.  The suite
is parametrized over the registry, so adding a provider automatically
subjects it to all of these.
"""

import pytest

from repro.cloud import (CloudPlatform, Direction, PROVIDERS, PriceBook,
                         get_provider, resolve_tier)
from repro.cloud.billing import CostTracker
from repro.cloud.providers import GCP
from repro.errors import (CloudError, ProviderLookupError, SchedulingError,
                          ValidationError)

ALL = sorted(PROVIDERS)


# -- registry ---------------------------------------------------------------

def test_registry_contains_the_three_clouds():
    assert set(ALL) == {"gcp", "aws", "openstack"}


def test_registry_is_frozen():
    with pytest.raises(TypeError):
        PROVIDERS["other"] = GCP


def test_get_provider_default_is_gcp():
    assert get_provider() is GCP
    assert get_provider(None) is GCP
    assert get_provider(GCP) is GCP


def test_get_provider_unknown_name():
    with pytest.raises(ProviderLookupError):
        get_provider("azure")


def test_lookup_error_is_both_cloud_and_validation_error():
    assert issubclass(ProviderLookupError, ValidationError)
    assert issubclass(ProviderLookupError, CloudError)


# -- per-provider contract --------------------------------------------------

@pytest.mark.parametrize("name", ALL)
def test_failing_lookups_raise_validation_error(name):
    provider = PROVIDERS[name]
    with pytest.raises(ValidationError):
        provider.region("atlantis-central9")
    with pytest.raises(ValidationError):
        provider.machine_type("quantum-mega-1")
    with pytest.raises(ValidationError):
        provider.tier_by_value("no-such-tier")


@pytest.mark.parametrize("name", ALL)
def test_tier_table_is_total_over_own_vocabulary(name):
    provider = PROVIDERS[name]
    assert provider.tiers, "a provider needs at least one tier"
    for direction in Direction:
        for tier in provider.tiers:
            route = provider.tier_route(direction, tier)
            assert len(route) == 3
    foreign = (GCP if name != "gcp" else PROVIDERS["aws"]).tiers[0]
    with pytest.raises(ValidationError):
        provider.tier_route(Direction.EGRESS, foreign)


@pytest.mark.parametrize("name", ALL)
def test_defaults_resolve_within_the_provider(name):
    provider = PROVIDERS[name]
    assert provider.region(provider.default_region)
    assert provider.machine_type(provider.default_machine_type)
    assert provider.machine_type(provider.probe_machine_type)
    assert provider.measurement_tier in provider.tiers
    if provider.differential_tiers is not None:
        for tier in provider.differential_tiers:
            assert tier in provider.tiers


@pytest.mark.parametrize("name", ALL)
def test_rate_card_is_non_negative(name):
    book = PROVIDERS[name].price_book
    assert book.storage_per_gb_month >= 0.0
    assert book.intra_region_per_gb >= 0.0
    for rate in book.egress_per_gb.values():
        assert rate >= 0.0
    for tier in PROVIDERS[name].tiers:
        assert book.egress_usd(10 * 1024 ** 3, tier) >= 0.0
    for mtype in PROVIDERS[name].machine_types.values():
        assert mtype.hourly_usd >= 0.0


@pytest.mark.parametrize("name", ALL)
def test_billing_settles_non_negative(name):
    provider = PROVIDERS[name]
    costs = CostTracker(prices=provider.price_book)
    costs.charge_vm_hours(0.05, 24.0)
    costs.charge_egress(5 * 1024 ** 3, provider.measurement_tier)
    costs.charge_storage(2_000_000, 0.5)
    assert costs.total_usd >= 0.0


@pytest.mark.parametrize("name", ALL)
def test_resolve_tier_roundtrips(name):
    provider = PROVIDERS[name]
    for tier in provider.tiers:
        assert resolve_tier(tier.value, name) is tier
        assert resolve_tier(tier.value, provider) is tier


def test_resolve_tier_legacy_prefers_gcp():
    # "standard" exists in both GCP's and AWS's vocabulary; datasets
    # written before the provider key must keep reading as GCP.
    from repro.cloud.tiers import NetworkTier
    assert resolve_tier("standard") is NetworkTier.STANDARD


# -- campaign smoke ---------------------------------------------------------

@pytest.fixture(scope="module", params=ALL)
def provider_scenario(request):
    from repro.experiments.scenario import build_scenario
    scenario = build_scenario(seed=11, scale=0.05, stories=False,
                              provider=request.param)
    return request.param, scenario


def test_campaign_smoke(provider_scenario):
    """A one-day campaign runs end to end on every provider and tags
    its dataset, events, and billing with the provider's name."""
    name, scenario = provider_scenario
    clasp = scenario.clasp
    provider = clasp.platform.provider
    assert provider.name == name
    region = provider.default_region
    selection = clasp.select_topology_servers(region)
    plan = clasp.deploy_topology(region, selection, budget_servers=4)
    assert plan.provider == name
    dataset = clasp.run_campaign([plan], days=1)
    assert dataset.provider == name
    assert dataset.completed_tests > 0
    assert clasp.total_cost_usd() >= 0.0


def test_differential_needs_two_tiers(provider_scenario):
    """Providers without a differential tier pair refuse the
    differential deployment instead of mis-deploying it."""
    name, scenario = provider_scenario
    clasp = scenario.clasp
    provider = clasp.platform.provider
    if provider.differential_tiers is not None:
        pytest.skip("provider supports differential deployments")
    with pytest.raises(SchedulingError):
        clasp.orchestrator.deploy_differential(
            provider.default_region, ["ookla-00001"], 0.0)
