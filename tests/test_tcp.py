"""TCP throughput model properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.netsim.tcp import (
    mathis_throughput_mbps,
    multiflow_throughput_mbps,
    pftk_throughput_mbps,
    tcp_throughput_mbps,
)

rtts = st.floats(min_value=1.0, max_value=500.0)
losses = st.floats(min_value=1e-6, max_value=0.3)


def test_mathis_known_value():
    # MSS 1460 B, RTT 100 ms, p = 0.01 -> ~1.43 Mbps.
    rate = mathis_throughput_mbps(100.0, 0.01)
    expected = (1460 / 0.1) * (1.5 / 0.01) ** 0.5 * 8 / 1e6
    assert rate == pytest.approx(expected)


@given(rtts, losses)
def test_pftk_below_mathis(rtt, loss):
    """PFTK (with timeouts, b=2) never exceeds the Mathis bound."""
    assert pftk_throughput_mbps(rtt, loss) <= \
        mathis_throughput_mbps(rtt, loss) * 1.01


@given(rtts, losses)
def test_throughput_decreasing_in_loss(rtt, loss):
    faster = tcp_throughput_mbps(rtt, loss)
    slower = tcp_throughput_mbps(rtt, min(0.9, loss * 2 + 1e-6))
    assert slower <= faster + 1e-9


@given(rtts, losses)
def test_throughput_decreasing_in_rtt(rtt, loss):
    near = tcp_throughput_mbps(rtt, loss)
    far = tcp_throughput_mbps(rtt * 2, loss)
    assert far <= near + 1e-9


def test_zero_loss_window_limited():
    # 4 MiB rwnd over 100 ms = ~335 Mbps.
    rate = tcp_throughput_mbps(100.0, 0.0)
    assert rate == pytest.approx(4 * 1024 * 1024 / 0.1 * 8 / 1e6, rel=0.01)


def test_validation():
    with pytest.raises(ValueError):
        tcp_throughput_mbps(0.0, 0.01)
    with pytest.raises(ValueError):
        tcp_throughput_mbps(10.0, 1.0)
    with pytest.raises(ValueError):
        mathis_throughput_mbps(10.0, -0.1)


def test_multiflow_scales_until_path_cap():
    one = multiflow_throughput_mbps(50.0, 1e-4, 1, 1e9)
    many = multiflow_throughput_mbps(50.0, 1e-4, 8, 1e9)
    assert many == pytest.approx(8 * one, rel=1e-6)
    capped = multiflow_throughput_mbps(50.0, 1e-4, 8, 100.0)
    assert capped == 100.0


def test_multiflow_validation():
    with pytest.raises(ValueError):
        multiflow_throughput_mbps(50.0, 1e-4, 0, 100.0)
    with pytest.raises(ValueError):
        multiflow_throughput_mbps(50.0, 1e-4, 4, -1.0)


@given(rtts, losses, st.integers(min_value=1, max_value=64),
       st.floats(min_value=1.0, max_value=1e5))
def test_multiflow_never_exceeds_path(rtt, loss, flows, avail):
    assert multiflow_throughput_mbps(rtt, loss, flows, avail) <= avail
