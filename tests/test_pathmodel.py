"""End-to-end path metrics composition."""

import pytest

from repro.netsim.linkstate import LinkStateEvaluator
from repro.netsim.pathmodel import PathPerformanceModel
from repro.netsim.routing import Router
from repro.netsim.traffic import DiurnalProfile, UtilizationModel
from repro.rng import SeedTree
from repro.simclock import CAMPAIGN_START


@pytest.fixture()
def model(mini_world, seeds):
    util = UtilizationModel(seeds, CAMPAIGN_START)
    # Deterministic quiet profiles everywhere.
    for link in mini_world.topology.links.values():
        util.set_profile_both(link.link_id,
                              DiurnalProfile(base=0.3, noise_sigma=0.0))
    evaluator = LinkStateEvaluator(util)
    return PathPerformanceModel(mini_world.topology, evaluator)


@pytest.fixture()
def router(mini_world):
    return Router(mini_world.topology, cloud_asn=mini_world.cloud_asn)


def test_symmetric_rtt(model, router, mini_world):
    pops = mini_world.pops
    route = router.route(pops["cloud-west"], pops["ispa-east"])
    metrics = model.evaluate(route, CAMPAIGN_START)
    # RTT must be at least twice the one-way propagation delay.
    one_way = route.propagation_delay_ms(mini_world.topology)
    assert metrics.rtt_ms >= 2 * one_way
    assert metrics.rtt_ms < 2 * one_way + 20.0  # bounded queueing


def test_asymmetric_reverse_route(model, router, mini_world):
    pops = mini_world.pops
    fwd = router.route(pops["ispa-east"], pops["cloud-west"])
    rev = router.route(pops["cloud-west"], pops["ispa-east"])
    metrics = model.evaluate(fwd, CAMPAIGN_START, reverse_route=rev)
    fwd_prop = fwd.propagation_delay_ms(mini_world.topology)
    rev_prop = rev.propagation_delay_ms(mini_world.topology)
    assert metrics.rtt_ms >= fwd_prop + rev_prop


def test_loss_composes_along_path(model, router, mini_world):
    pops = mini_world.pops
    long_route = router.route(pops["cloud-west"], pops["ispb-south"])
    short_route = router.route(pops["cloud-west"], pops["ispa-west"])
    long_metrics = model.evaluate(long_route, CAMPAIGN_START)
    short_metrics = model.evaluate(short_route, CAMPAIGN_START)
    assert long_metrics.loss_rate > short_metrics.loss_rate
    assert 0.0 <= long_metrics.loss_rate < 0.01


def test_avail_is_bottleneck_min(model, router, mini_world):
    pops = mini_world.pops
    route = router.route(pops["cloud-west"], pops["ispa-east"])
    metrics = model.evaluate(route, CAMPAIGN_START)
    assert metrics.avail_mbps == pytest.approx(
        min(o.residual_mbps for o in metrics.forward))
    assert metrics.bottleneck.residual_mbps == metrics.avail_mbps


def test_congested_flag(model, router, mini_world, seeds):
    pops = mini_world.pops
    util = model.evaluator.utilization_model
    link = mini_world.topology.link(mini_world.links["peer-aw"])
    util.set_profile(link.link_id, 1,
                     DiurnalProfile(base=1.2, noise_sigma=0.0))
    route = router.route(pops["ispa-west"], pops["cloud-west"])
    metrics = model.evaluate(route, CAMPAIGN_START)
    assert metrics.congested
    assert metrics.max_forward_utilization >= 1.0
    assert metrics.loss_rate > 0.1


def test_burst_loss_separation(model, router, mini_world):
    pops = mini_world.pops
    link = mini_world.topology.link(mini_world.links["peer-aw"])
    link.burst_loss = 0.10
    route = router.route(pops["ispa-west"], pops["cloud-west"])
    metrics = model.evaluate(route, CAMPAIGN_START)
    assert metrics.burst_loss_rate == pytest.approx(0.10)
    # Measured loss includes the burst component...
    assert metrics.measured_loss_rate >= 0.10
    # ...but the TCP-effective loss barely moves.
    assert metrics.tcp_effective_loss_rate < metrics.loss_rate + 0.01


def test_idle_rtt(model, router, mini_world):
    pops = mini_world.pops
    route = router.route(pops["cloud-west"], pops["ispa-east"])
    idle = model.idle_rtt_ms(route)
    assert idle == pytest.approx(
        2 * route.propagation_delay_ms(mini_world.topology))
