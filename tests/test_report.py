"""Text reporting: tables, ASCII charts, figure containers."""

import pytest

from repro.report.ascii import (
    ascii_cdf,
    ascii_histogram,
    ascii_series,
    render_cdf,
    render_series,
    sparkline,
)
from repro.report.figures import FigureSeries, figure_to_text
from repro.report.tables import TextTable, format_percent


def test_format_percent():
    assert format_percent(0.5) == "50.0%"
    assert format_percent(0.1234, digits=2) == "12.34%"


def test_table_render():
    table = TextTable(["region", "links"], title="Demo")
    table.add_row(["us-west1", 5293])
    table.add_row(["us-east1", 6217])
    text = table.render()
    lines = text.splitlines()
    assert lines[0] == "Demo"
    assert "region" in lines[1]
    assert set(lines[2]) <= {"-", " "}
    assert "us-west1" in lines[3]
    assert len(table) == 2


def test_table_validation():
    with pytest.raises(ValueError):
        TextTable([])
    table = TextTable(["a", "b"])
    with pytest.raises(ValueError):
        table.add_row([1])


def test_table_float_formatting():
    table = TextTable(["v"])
    table.add_rows([[1234.5678], [12.3456], [0.1234], [float("nan")]])
    text = table.render()
    assert "1235" in text
    assert "12.35" in text
    assert "0.1234" in text
    assert "nan" in text


def test_sparkline():
    line = sparkline([0, 1, 2, 3])
    assert len(line) == 4
    assert line[0] != line[-1]
    assert sparkline([]) == ""
    assert sparkline([5, 5, 5]) == sparkline([1, 1, 1])


def test_ascii_series():
    text = ascii_series([1, 5, 3, 9, 2], width=10, height=4)
    assert "min=1.0" in text
    assert "max=9.0" in text
    assert ascii_series([]) == "(empty series)"
    # Downsampling long series keeps the width bounded.
    long_text = ascii_series(list(range(500)), width=40, height=3)
    assert max(len(l) for l in long_text.splitlines()) <= 45


def test_ascii_histogram_and_cdf():
    values = [1.0] * 10 + [9.0] * 2
    hist = ascii_histogram(values, bins=4)
    assert "10" in hist
    assert ascii_histogram([]) == "(no data)"
    cdf = ascii_cdf([1, 2, 3, 4, 5])
    assert "P<=0.50" in cdf
    assert ascii_cdf([]) == "(no data)"


def test_render_helpers():
    assert "[1.0 .. 3.0]" in render_series("x", [1, 2, 3])
    assert "(empty)" in render_series("x", [])
    cdf_line = render_cdf("d", [-1, 0, 1])
    assert "p50=" in cdf_line


def test_figure_series():
    series = FigureSeries(label="s", y=[1, 2, 3], x=[0, 1, 2])
    assert series.n == 3
    summary = series.summary()
    assert summary["median"] == 2
    with pytest.raises(ValueError):
        FigureSeries(label="bad", y=[1, 2], x=[0])
    assert FigureSeries(label="e", y=[]).summary() == {"n": 0}


def test_figure_to_text_kinds():
    series = [
        FigureSeries(label="line", y=[1, 2, 3]),
        FigureSeries(label="cdf", y=[-0.5, 0.0, 0.5], kind="cdf"),
        FigureSeries(label="scatter", y=[10, 20, 30], kind="scatter"),
        FigureSeries(label="bar", y=[1, 2], kind="bar"),
    ]
    text = figure_to_text("My Figure", series)
    assert text.startswith("My Figure")
    assert "line" in text and "cdf" in text and "scatter" in text
    clipped = figure_to_text("F", series, max_series=2)
    assert "2 more series" in clipped


def test_table_add_rows_bulk():
    table = TextTable(["a", "b"])
    table.add_rows([[1, 2], [3, 4], [5, 6]])
    assert len(table) == 3
    rendered = table.render()
    assert rendered.count("\n") == 4  # header + rule + 3 rows
