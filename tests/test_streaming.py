"""Streaming detection: batch equivalence, lateness, windows.

The hard contract under test: finalizing a
:class:`~repro.core.streaming.StreamingCongestionDetector` fed from
the live event bus yields a report *equal* to batch ``detect()`` on
the dataset the same events built - same events, day records, and
pair hours, identical floats - across fault plans and shard counts.
"""

import numpy as np
import pytest

from repro.cloud.tiers import NetworkTier
from repro.core.campaign import CampaignDataset
from repro.core.congestion import detect
from repro.core.records import MeasurementRecord, ServerMeta
from repro.core.streaming import (StreamingCongestionDetector,
                                  StreamingDetectorObserver,
                                  dataset_offsets, iter_hourly,
                                  stream_dataset)
from repro.errors import AnalysisError, ValidationError
from repro.experiments.scenario import build_scenario
from repro.faults import FaultPlan
from repro.simclock import CAMPAIGN_START
from repro.units import DAY, HOUR

# Keep in sync with tests/test_shard.py's pinned campaign shape.
SEED, SCALE, REGION, BUDGET_SERVERS, DAYS = 11, 0.05, "us-west1", 8, 2

_FAULT_PLANS = {"off": lambda: None, "default": FaultPlan.default,
                "heavy": FaultPlan.heavy}


def _campaign_with_stream(faults, shards):
    scenario = build_scenario(seed=SEED, scale=SCALE,
                              faults=_FAULT_PLANS[faults]())
    clasp = scenario.clasp
    selection = clasp.select_topology_servers(REGION)
    plan = clasp.deploy_topology(REGION, selection,
                                 budget_servers=BUDGET_SERVERS)
    detector, observer = clasp.streaming_detector()
    dataset = clasp.run_campaign([plan], days=DAYS,
                                 charge_billing=False,
                                 observers=[observer], shards=shards)
    return dataset, detector


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("faults", ["off", "default", "heavy"])
def test_stream_equals_batch(faults, shards):
    dataset, detector = _campaign_with_stream(faults, shards)
    batch = detect(dataset)
    streamed = detector.finalize()
    assert detector.late_dropped == 0
    assert streamed.events == batch.events
    assert streamed.day_records == batch.day_records
    assert streamed.pair_hours == batch.pair_hours
    assert streamed == batch
    assert streamed.congested_pairs() == batch.congested_pairs()


# ----------------------------------------------------------------------
# synthetic feeds (no engine): lateness, ordering, windows


def _synthetic_dataset(days=3, offset_hours=0.0, server_id="srv-1",
                       start_ts=float(CAMPAIGN_START)):
    """Hourly downloads collapsing at local hours 10-12 every day."""
    dataset = CampaignDataset(start_ts, start_ts + days * DAY)
    dataset.add_server_meta(ServerMeta(
        server_id=server_id, asn=65000, sponsor="Test ISP",
        city_key="Testtown, US", country="US",
        utc_offset_hours=offset_hours, lat=0.0, lon=0.0,
        business_type="isp"))
    n_hours = days * 24
    for hour in range(n_hours):
        ts = start_ts + hour * HOUR
        local_hour = int((ts + offset_hours * HOUR) // HOUR) % 24
        value = 80.0 if local_hour in (10, 11, 12) else 400.0
        dataset.record(MeasurementRecord(
            ts=ts, region="us-west1", vm_name="vm-1",
            server_id=server_id, tier=NetworkTier.PREMIUM,
            download_mbps=value + hour * 1e-3, upload_mbps=95.0,
            latency_ms=20.0, download_loss_rate=1e-4,
            upload_loss_rate=1e-4))
    return dataset


def _rows(dataset, metric="download"):
    rows = []
    for pair in dataset.pairs():
        series = dataset.table.series(pair)
        for ts, value in zip(series["ts"], series[metric]):
            rows.append((float(ts), pair, float(value)))
    rows.sort(key=lambda row: row[0])
    return rows


def test_stream_dataset_replay_matches_batch():
    dataset = _synthetic_dataset(offset_hours=-7.0)
    detector, report = stream_dataset(dataset)
    assert report == detect(dataset)
    assert detector.late_dropped == 0
    assert detector.observed == len(dataset)


def test_out_of_order_within_grace_is_equivalent():
    dataset = _synthetic_dataset()
    detector = StreamingCongestionDetector(
        dataset.start_ts, dataset_offsets(dataset), lateness_hours=3.0)
    for hour_ts, batch_rows in iter_hourly(_rows(dataset),
                                           dataset.start_ts,
                                           dataset.end_ts):
        detector.advance(hour_ts)
        # Deliver the hour's rows two hours late *and* reversed: the
        # sealing grace keeps the buckets open, and the stable ts sort
        # at seal time restores the table order.
        for ts, pair, value in reversed(batch_rows):
            detector.observe(pair, ts, value)
    assert detector.finalize() == detect(dataset)
    assert detector.late_dropped == 0


def test_delayed_hour_delivery_within_grace():
    dataset = _synthetic_dataset()
    detector = StreamingCongestionDetector(
        dataset.start_ts, dataset_offsets(dataset), lateness_hours=2.0)
    hours = list(iter_hourly(_rows(dataset), dataset.start_ts,
                             dataset.end_ts))
    pending = []
    for hour_ts, batch_rows in hours:
        detector.advance(hour_ts)
        # Rows arrive one hour after their own hour's boundary.
        for ts, pair, value in pending:
            detector.observe(pair, ts, value)
        pending = batch_rows
    for ts, pair, value in pending:
        detector.observe(pair, ts, value)
    assert detector.finalize() == detect(dataset)
    assert detector.late_dropped == 0


def test_too_late_observation_is_dropped_and_counted():
    dataset = _synthetic_dataset(days=2)
    detector = StreamingCongestionDetector(
        dataset.start_ts, dataset_offsets(dataset), lateness_hours=0.0)
    rows = _rows(dataset)
    held_back = rows.pop(5)  # a day-0 sample delivered at campaign end
    for hour_ts, batch_rows in iter_hourly(rows, dataset.start_ts,
                                           dataset.end_ts):
        detector.advance(hour_ts)
        for ts, pair, value in batch_rows:
            detector.observe(pair, ts, value)
    detector.advance(dataset.end_ts)
    assert not detector.observe(held_back[1], held_back[0],
                                held_back[2])
    assert detector.late_dropped == 1
    streamed = detector.finalize()
    batch = detect(dataset)
    pair = held_back[1]
    assert streamed.pair_hours[pair] == batch.pair_hours[pair] - 1


def test_window_eviction_at_edge():
    dataset = _synthetic_dataset(days=3)
    detector = StreamingCongestionDetector(
        dataset.start_ts, dataset_offsets(dataset), window_days=1)
    rows = _rows(dataset)
    pair = rows[0][1]
    day_rows = [row for row in rows
                if row[0] < dataset.start_ts + DAY]
    for ts, key, value in day_rows:
        detector.observe(key, ts, value)
    # Day 0 seals at the day-1 boundary and sits inside the 1-day
    # window: its congested hours make the pair congested.
    detector.advance(dataset.start_ts + DAY)
    assert detector.pair_state(pair).measured_days == 1
    assert detector.congested_pairs() == [pair]
    # One watermark day later, day 0 falls off the window edge.
    detector.advance(dataset.start_ts + 2 * DAY)
    assert detector.pair_state(pair).measured_days == 0
    assert detector.congested_pairs() == []
    # The window affects only live state: finalize still matches the
    # batch pass over the same observations.
    for ts, key, value in [row for row in rows
                           if row[0] >= dataset.start_ts + DAY]:
        detector.observe(key, ts, value)
    assert detector.finalize() == detect(dataset)


def test_watermark_never_rewinds():
    dataset = _synthetic_dataset(days=1)
    detector = StreamingCongestionDetector(
        dataset.start_ts, dataset_offsets(dataset))
    detector.advance(dataset.start_ts + 5 * HOUR)
    assert detector.advance(dataset.start_ts) == 0
    assert detector.watermark == dataset.start_ts + 5 * HOUR


def test_version_bumps_only_on_seal():
    dataset = _synthetic_dataset(days=2)
    detector = StreamingCongestionDetector(
        dataset.start_ts, dataset_offsets(dataset))
    rows = _rows(dataset)
    for ts, pair, value in rows:
        detector.observe(pair, ts, value)
    assert detector.version == 0
    assert detector.advance(dataset.start_ts + 12 * HOUR) == 0
    assert detector.version == 0
    assert detector.advance(dataset.start_ts + DAY) == 1
    assert detector.version == 1
    detector.finalize()
    assert detector.version == 2


def test_observer_requires_record_payload():
    from repro.engine.events import TestCompleted

    dataset = _synthetic_dataset(days=1)
    detector = StreamingCongestionDetector(
        dataset.start_ts, dataset_offsets(dataset))
    observer = StreamingDetectorObserver(detector)
    event = TestCompleted(
        ts=dataset.start_ts, region="us-west1", vm_name="vm-1",
        server_id="srv-1", tier="premium", latency_ms=20.0,
        download_mbps=100.0, upload_mbps=95.0, upload_bytes=1.0,
        artefact_bytes=1, record=None)
    with pytest.raises(ValidationError):
        observer.on_event(event)


def test_constructor_validation():
    offsets = {"srv-1": 0.0}.get
    with pytest.raises(AnalysisError):
        StreamingCongestionDetector(0.0, offsets, metric="nope")
    with pytest.raises(ValidationError):
        StreamingCongestionDetector(0.0, offsets, window_days=0)
    with pytest.raises(ValidationError):
        StreamingCongestionDetector(0.0, offsets, lateness_hours=-1.0)
    with pytest.raises(ValidationError):
        stream_dataset(_synthetic_dataset(days=1),
                       StreamingCongestionDetector(0.0, offsets),
                       window_days=2)
