"""Whole-program analyzer tests: project index, RPR009-012, cache, output.

Cross-file fixtures go through :func:`repro.lint.lint_sources` (an
in-memory multi-file project) or a hand-built :class:`ProjectIndex`;
filesystem behavior (cache reuse, CLI error paths, obs counters) runs
against small trees written to ``tmp_path``.
"""

import ast
import json
import textwrap

import pytest

import repro.obs as obs
from repro.errors import ConfigError
from repro.lint import (LintCache, ProjectIndex, content_key,
                        findings_to_json, findings_to_sarif, lint_sources,
                        lint_text, render_module_graph, run)
from repro.lint.baseline import load_baseline, write_baseline
from repro.lint.cli import main as lint_main
from repro.lint.engine import ModuleContext
from repro.lint.findings import Finding
from repro.lint.index import extract_facts
from repro.lint.noqa import parse_noqa
from repro.lint.xrules import SHARD_SAFE_GLOBALS


def codes(sources, **kwargs):
    dedented = {path: textwrap.dedent(src) for path, src in sources.items()}
    return [f.code for f in lint_sources(dedented, **kwargs)]


def make_index(sources):
    """ProjectIndex straight from ``{module: source}`` (no lint pass)."""
    facts = []
    for module, src in sources.items():
        src = textwrap.dedent(src)
        path = "src/" + module.replace(".", "/") + ".py"
        ctx = ModuleContext(path=path, module=module,
                            tree=ast.parse(src), lines=src.splitlines())
        facts.append(extract_facts(ctx))
    return ProjectIndex(facts)


# -- RPR009 shard-unsafe-global ---------------------------------------------

def test_function_scope_mutation_of_module_global_flagged():
    found = codes({"src/repro/core/state.py": """
        CACHE = {}

        def put(key, value):
            CACHE[key] = value
    """})
    assert "RPR009" in found


def test_cross_module_mutation_reported_at_definition():
    findings = lint_sources({
        "src/repro/core/state.py": "TABLE = {}\n",
        "src/repro/core/writer.py": (
            "from repro.core.state import TABLE\n\n"
            "def put(k, v):\n"
            "    TABLE[k] = v\n"),
    })
    nine = [f for f in findings if f.code == "RPR009"]
    assert len(nine) == 1
    assert nine[0].path == "src/repro/core/state.py"
    assert "writer.py:4" in nine[0].message


def test_import_time_table_building_not_flagged():
    found = codes({"src/repro/core/tables.py": """
        ROWS = {}
        for name in ("a", "b"):
            ROWS[name] = len(name)
    """})
    assert "RPR009" not in found


def test_global_rebind_flagged_and_noqa_suppresses():
    source = """
        _active = None

        def activate():
            global _active
            _active = object()
    """
    assert "RPR009" in codes({"src/repro/core/switch.py": source})
    suppressed = source.replace(
        "_active = None", "_active = None  # repro: noqa RPR009")
    assert "RPR009" not in codes({"src/repro/core/switch.py": suppressed})


def test_allowlist_entries_are_justified():
    for (module, name), why in SHARD_SAFE_GLOBALS.items():
        assert module.startswith("repro"), (module, name)
        assert len(why.split()) >= 5, f"{module}.{name} needs a real reason"


# -- RPR010 unordered-iteration ---------------------------------------------

def test_inline_set_iteration_flagged():
    found = codes({"src/repro/core/loops.py": """
        def f():
            return [x for x in {"b", "a"}]
    """})
    assert "RPR010" in found


def test_module_set_iteration_flagged_across_files():
    found = codes({
        "src/repro/core/names.py": 'NAMES = {"b", "a"}\n',
        "src/repro/core/uses.py": (
            "from repro.core.names import NAMES\n\n"
            "def walk():\n"
            "    return [n for n in NAMES]\n"),
    })
    assert "RPR010" in found


def test_sorted_iteration_not_flagged():
    found = codes({"src/repro/core/loops.py": """
        NAMES = {"b", "a"}

        def walk():
            return [n for n in sorted(NAMES)]
    """})
    assert "RPR010" not in found


def test_order_free_consumers_not_flagged():
    found = codes({"src/repro/core/loops.py": """
        NAMES = {"b", "a"}

        def f():
            return sum(len(n) for n in NAMES), {n.upper() for n in NAMES}
    """})
    assert "RPR010" not in found


# -- RPR011 seedtree-label-collision ----------------------------------------

def test_duplicate_labels_across_files_flagged():
    findings = lint_sources({
        "src/repro/core/a.py": (
            "def f(tree):\n    return tree.generator('dup-label')\n"),
        "src/repro/core/b.py": (
            "def g(tree):\n    return tree.generator('dup-label')\n"),
    })
    eleven = [f for f in findings if f.code == "RPR011"]
    assert {f.path for f in eleven} == \
        {"src/repro/core/a.py", "src/repro/core/b.py"}


def test_allow_reuse_not_flagged():
    found = codes({
        "src/repro/core/a.py": (
            "def f(tree):\n"
            "    return tree.generator('shared', allow_reuse=True)\n"),
        "src/repro/core/b.py": (
            "def g(tree):\n"
            "    return tree.generator('shared', allow_reuse=True)\n"),
    })
    assert "RPR011" not in found


def test_literal_overlapping_template_flagged():
    findings = lint_sources({
        "src/repro/core/dynamic.py": (
            "def f(tree, name):\n"
            "    return tree.stream(f'lane-{name}')\n"),
        "src/repro/core/static.py": (
            "def g(tree):\n    return tree.generator('lane-7')\n"),
    })
    eleven = [f for f in findings if f.code == "RPR011"]
    assert len(eleven) == 1
    assert eleven[0].path == "src/repro/core/static.py"
    assert "lane-{}" in eleven[0].message


def test_distinct_labels_not_flagged():
    found = codes({
        "src/repro/core/a.py": (
            "def f(tree):\n    return tree.generator('alpha')\n"),
        "src/repro/core/b.py": (
            "def g(tree):\n    return tree.generator('beta')\n"),
    })
    assert "RPR011" not in found


# -- RPR012 event-exhaustiveness --------------------------------------------

_EVENTS_FIXTURE = """
    from typing import Any, ClassVar, Tuple

    class CampaignEvent:
        kind: ClassVar[str] = "event"

    class Foo(CampaignEvent):
        kind: ClassVar[str] = "foo-done"

    class Bar(CampaignEvent):
        kind: ClassVar[str] = "bar-done"
        blob: Any = None

    OPAQUE_FIELDS = frozenset({"blob"})

    EVENT_KINDS: Tuple[str, ...] = tuple(
        cls.kind for cls in (Foo, Bar))
"""

_OBSERVERS_FIXTURE = """
    class Observer:
        IGNORED_EVENTS = ()

        def on_event(self, event):
            pass

    class GoodObserver(Observer):
        IGNORED_EVENTS = ("bar-done",)

        def on_foo_done(self, event):
            pass
"""


def _events_project(events=_EVENTS_FIXTURE, observers=_OBSERVERS_FIXTURE):
    return lint_sources({
        "src/repro/engine/events.py": textwrap.dedent(events),
        "src/repro/engine/observers.py": textwrap.dedent(observers),
    }, select=["RPR012"])


def test_consistent_taxonomy_is_clean():
    assert _events_project() == []


def test_unregistered_event_class_flagged():
    findings = _events_project(events=_EVENTS_FIXTURE.replace(
        "(Foo, Bar)", "(Foo,)"))
    assert any("EVENT_KINDS" in f.message for f in findings)


def test_undeclared_opaque_field_flagged():
    findings = _events_project(events=_EVENTS_FIXTURE.replace(
        'frozenset({"blob"})', "frozenset()"))
    assert any("event_payload" in f.message and "blob" in f.message
               for f in findings)


def test_unhandled_event_kind_flagged():
    findings = _events_project(observers=_OBSERVERS_FIXTURE.replace(
        'IGNORED_EVENTS = ("bar-done",)', "IGNORED_EVENTS = ()"))
    assert any("neither handles nor ignores" in f.message
               and "'bar-done'" in f.message for f in findings)


def test_bogus_handler_name_flagged():
    findings = _events_project(observers=_OBSERVERS_FIXTURE.replace(
        "on_foo_done", "on_foo_finished"))
    assert any("on_foo_finished" in f.message for f in findings)


def test_unknown_ignored_kind_flagged():
    findings = _events_project(observers=_OBSERVERS_FIXTURE.replace(
        '("bar-done",)', '("bar-done", "ghost-kind")'))
    assert any("ghost-kind" in f.message for f in findings)


def test_duplicate_kind_string_flagged():
    findings = _events_project(events=_EVENTS_FIXTURE.replace(
        '"bar-done"', '"foo-done"'))
    assert any("share the kind" in f.message for f in findings)


def test_generic_on_event_observer_exempt():
    findings = _events_project(observers="""
        class Observer:
            def on_event(self, event):
                pass

        class Mirror(Observer):
            def on_event(self, event):
                pass
    """)
    assert findings == []


# -- RPR013 alert-rule-exhaustiveness ---------------------------------------

_RULES_FIXTURE = """
    from typing import ClassVar, Tuple

    class AlertRule:
        kind: ClassVar[str] = "rule"

    class ThresholdRule(AlertRule):
        kind: ClassVar[str] = "threshold"

    class BurnRateRule(AlertRule):
        kind: ClassVar[str] = "burn-rate"

    RULE_KINDS: Tuple[str, ...] = tuple(
        cls.kind for cls in (ThresholdRule, BurnRateRule))
"""

_ENGINE_FIXTURE = """
    class RuleEvaluator:
        def _eval_threshold(self, rule, now_ts):
            pass

        def _eval_burn_rate(self, rule, now_ts):
            pass
"""


def _rules_project(rules=_RULES_FIXTURE, engine=_ENGINE_FIXTURE):
    return lint_sources({
        "src/repro/alerts/rules.py": textwrap.dedent(rules),
        "src/repro/alerts/engine.py": textwrap.dedent(engine),
    }, select=["RPR013"])


def test_consistent_rule_taxonomy_is_clean():
    assert _rules_project() == []


def test_unregistered_rule_class_flagged():
    findings = _rules_project(rules=_RULES_FIXTURE.replace(
        "(ThresholdRule, BurnRateRule)", "(ThresholdRule,)"))
    assert any("RULE_KINDS" in f.message and "BurnRateRule" in f.message
               for f in findings)


def test_rule_without_literal_kind_flagged():
    findings = _rules_project(rules=_RULES_FIXTURE.replace(
        'kind: ClassVar[str] = "burn-rate"', "pass"))
    assert any("no literal" in f.message for f in findings)


def test_duplicate_rule_kind_flagged():
    findings = _rules_project(rules=_RULES_FIXTURE.replace(
        '"burn-rate"', '"threshold"'))
    assert any("share the kind" in f.message for f in findings)


def test_phantom_registry_entry_flagged():
    findings = _rules_project(rules=_RULES_FIXTURE.replace(
        "(ThresholdRule, BurnRateRule)",
        "(ThresholdRule, BurnRateRule, GhostRule)"))
    assert any("GhostRule" in f.message and "not an AlertRule" in f.message
               for f in findings)


def test_missing_eval_handler_flagged():
    findings = _rules_project(engine=_ENGINE_FIXTURE.replace(
        "_eval_burn_rate", "_eval_burns"))
    messages = " ".join(f.message for f in findings)
    assert "no handler for rule kind 'burn-rate'" in messages
    assert "_eval_burns" in messages


def test_missing_evaluator_class_flagged():
    findings = _rules_project(engine="class Other:\n    pass\n")
    assert any("no RuleEvaluator" in f.message for f in findings)


# -- project index ----------------------------------------------------------

def test_import_cycle_detected():
    index = make_index({
        "repro.core.a": "import repro.core.b\n",
        "repro.core.b": "import repro.core.a\n",
    })
    assert index.import_cycles() == [["repro.core.a", "repro.core.b"]]


def test_typing_only_import_excluded_from_graph():
    index = make_index({
        "repro.core.a": (
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    import repro.core.b\n"),
        "repro.core.b": "import repro.core.a\n",
    })
    assert index.import_cycles() == []
    assert "repro.core.b" not in index.module_graph()["repro.core.a"]
    assert "repro.core.b" in \
        index.module_graph(include_typing=True)["repro.core.a"]


def test_resolve_follows_aliases():
    index = make_index({
        "repro.core.defs": "TABLE = {}\n",
        "repro.core.uses": "from repro.core.defs import TABLE as T\n",
    })
    assert index.resolve("repro.core.uses", "T") == \
        ("repro.core.defs", "TABLE")
    assert index.resolve("repro.core.uses", "missing") is None


def test_render_module_graph_lists_edges_and_verdict():
    index = make_index({
        "repro.core.a": "import repro.core.b\n",
        "repro.core.b": "x = 1\n",
    })
    text = render_module_graph(index)
    assert "repro.core.a [core]" in text
    assert "  -> repro.core.b" in text
    assert "no import cycles" in text
    cyclic = make_index({
        "repro.core.a": "import repro.core.b\n",
        "repro.core.b": "import repro.core.a\n",
    })
    assert "1 import cycle(s):" in render_module_graph(cyclic)


# -- incremental cache ------------------------------------------------------

def _write_tree(root):
    pkg = root / "src" / "repro" / "core"
    pkg.mkdir(parents=True)
    (pkg / "alpha.py").write_text("A = 1\n", encoding="utf-8")
    (pkg / "beta.py").write_text("import time\n\n"
                                 "def f():\n"
                                 "    return time.time()\n",
                                 encoding="utf-8")
    return pkg


def test_cache_reuses_unchanged_files(tmp_path):
    pkg = _write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    first = run([pkg], root=tmp_path, cache=cache)
    assert (first.files_checked, first.files_reused) == (2, 0)
    second = run([pkg], root=tmp_path, cache=cache)
    assert (second.files_checked, second.files_reused) == (2, 2)
    assert [str(f) for f in second.findings] == \
        [str(f) for f in first.findings]
    # Editing one file invalidates exactly that file.
    (pkg / "alpha.py").write_text("A = 2\n", encoding="utf-8")
    third = run([pkg], root=tmp_path, cache=cache)
    assert (third.files_checked, third.files_reused) == (2, 1)


def test_cross_file_findings_survive_cache_hits(tmp_path):
    pkg = _write_tree(tmp_path)
    (pkg / "state.py").write_text(
        "CACHE = {}\n\ndef put(k, v):\n    CACHE[k] = v\n",
        encoding="utf-8")
    cache = tmp_path / "cache.json"
    cold = run([pkg], root=tmp_path, cache=cache)
    warm = run([pkg], root=tmp_path, cache=cache)
    assert warm.files_reused == warm.files_checked
    for result in (cold, warm):
        assert "RPR009" in [f.code for f in result.findings]


def test_corrupt_cache_treated_as_empty(tmp_path):
    pkg = _write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    cache.write_text("{not json", encoding="utf-8")
    result = run([pkg], root=tmp_path, cache=cache)
    assert result.files_reused == 0
    assert run([pkg], root=tmp_path, cache=cache).files_reused == 2


def test_content_key_changes_with_source_and_select():
    base = content_key("x = 1\n")
    assert content_key("x = 2\n") != base
    assert content_key("x = 1\n", select=["RPR001"]) != base
    assert content_key("x = 1\n") == base


def test_cache_prunes_deleted_files(tmp_path):
    pkg = _write_tree(tmp_path)
    cache = tmp_path / "cache.json"
    run([pkg], root=tmp_path, cache=cache)
    (pkg / "beta.py").unlink()
    run([pkg], root=tmp_path, cache=cache)
    store = LintCache(cache)
    assert store.get("src/repro/core/beta.py", content_key("")) is None
    payload = json.loads(cache.read_text(encoding="utf-8"))
    assert "src/repro/core/beta.py" not in payload["files"]


# -- CLI error paths (satellite: empty / missing targets) -------------------

def test_run_rejects_missing_target(tmp_path):
    with pytest.raises(ConfigError, match="does not exist"):
        run([tmp_path / "nope"])


def test_run_rejects_target_without_python_files(tmp_path):
    (tmp_path / "README.txt").write_text("hi", encoding="utf-8")
    with pytest.raises(ConfigError, match="no Python files"):
        run([tmp_path])


def test_cli_exits_2_on_bad_targets(tmp_path, capsys):
    assert lint_main([str(tmp_path / "nope"), "--no-cache"]) == 2
    assert "does not exist" in capsys.readouterr().err
    empty = tmp_path / "empty"
    empty.mkdir()
    assert lint_main([str(empty), "--no-cache"]) == 2
    assert "no Python files" in capsys.readouterr().err


# -- machine-readable output ------------------------------------------------

def _sample_findings():
    return ([Finding("src/repro/core/x.py", 3, "RPR001", "wall clock")],
            [Finding("src/repro/core/y.py", 7, "RPR003", "builtin raise")])


def test_sarif_log_matches_2_1_0_shape():
    findings, baselined = _sample_findings()
    log = json.loads(findings_to_sarif(findings, baselined))
    assert log["version"] == "2.1.0"
    assert log["$schema"].endswith("sarif-schema-2.1.0.json")
    assert len(log["runs"]) == 1
    driver = log["runs"][0]["tool"]["driver"]
    assert driver["name"] == "repro.lint"
    rule_ids = [rule["id"] for rule in driver["rules"]]
    assert rule_ids == sorted(rule_ids)
    assert {"RPR001", "RPR009", "RPR012"} <= set(rule_ids)
    for rule in driver["rules"]:
        assert rule["shortDescription"]["text"]
    results = log["runs"][0]["results"]
    assert len(results) == 2
    first = results[0]
    assert first["ruleId"] == "RPR001"
    assert first["message"]["text"] == "wall clock"
    location = first["locations"][0]["physicalLocation"]
    assert location["artifactLocation"]["uri"] == "src/repro/core/x.py"
    assert location["region"]["startLine"] == 3
    assert rule_ids[first["ruleIndex"]] == "RPR001"
    assert results[1]["suppressions"] == [{"kind": "external"}]


def test_json_output_shape():
    findings, baselined = _sample_findings()
    payload = json.loads(findings_to_json(findings, baselined,
                                          files_checked=5, files_reused=2))
    assert payload["files_checked"] == 5
    assert payload["files_reused"] == 2
    assert payload["findings"][0] == {
        "path": "src/repro/core/x.py", "line": 3,
        "code": "RPR001", "message": "wall clock"}
    assert len(payload["baselined"]) == 1


# -- noqa / baseline edge cases (satellite) ---------------------------------

def test_noqa_mixed_comma_space_code_list():
    assert parse_noqa("x  # repro: noqa RPR001, RPR003 RPR009") == \
        frozenset({"RPR001", "RPR003", "RPR009"})


def test_noqa_on_first_line_of_multiline_call_suppresses():
    findings = lint_text(
        "import time\n"
        "t = time.time(  # repro: noqa RPR001\n"
        ")\n", module="repro.core.fixture")
    assert findings == []


def test_noqa_on_continuation_line_does_not_suppress():
    findings = lint_text(
        "import time\n"
        "t = time.time(\n"
        ")  # repro: noqa RPR001\n", module="repro.core.fixture")
    assert [f.code for f in findings] == ["RPR001"]


def test_baseline_entry_without_comment_rejected(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text("src/repro/core/x.py:3:RPR001\n", encoding="utf-8")
    with pytest.raises(ConfigError, match="justification"):
        load_baseline(baseline)


def test_baseline_wildcard_entry_with_comment_loads(tmp_path):
    baseline = tmp_path / "baseline.txt"
    baseline.write_text(
        "# header comment\n"
        "\n"
        "src/repro/core/x.py:*:RPR002  # legacy unit math, tracked\n",
        encoding="utf-8")
    assert load_baseline(baseline) == {"src/repro/core/x.py:*:RPR002"}


def test_write_baseline_round_trips_through_load(tmp_path):
    baseline = tmp_path / "baseline.txt"
    findings, _ = _sample_findings()
    assert write_baseline(baseline, findings) == 1
    assert "TODO: justify or fix" in baseline.read_text(encoding="utf-8")
    assert load_baseline(baseline) == {"src/repro/core/x.py:3:RPR001"}


# -- obs integration (satellite) --------------------------------------------

def test_lint_run_exports_obs_counters(tmp_path):
    pkg = _write_tree(tmp_path)
    obs.enable()
    try:
        run([pkg], root=tmp_path, cache=tmp_path / "cache.json")
        run([pkg], root=tmp_path, cache=tmp_path / "cache.json")
        counters = obs.snapshot()["counters"]
        spans = [s.name for s in obs.tracer().finished()]
    finally:
        obs.disable()
    assert counters["lint.files.scanned"] == 4
    assert counters["lint.files.reused"] == 2
    assert counters["lint.findings.RPR001"] == 2
    assert spans.count("lint.run") == 2
