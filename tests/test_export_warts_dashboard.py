"""Dataset export/import, warts serialization, and the text dashboard."""

import numpy as np
import pytest

from repro.cloud.tiers import NetworkTier
from repro.core.campaign import CampaignDataset
from repro.core.export import (SCHEMA_VERSION, dataset_digest,
                               export_dataset, load_dataset)
from repro.core.records import MeasurementRecord, ServerMeta
from repro.errors import AnalysisError, MeasurementError
from repro.report.dashboard import render_dashboard
from repro.simclock import CAMPAIGN_START
from repro.tools import warts
from repro.tools.traceroute import Hop, Traceroute
from repro.units import DAY, HOUR


def _dataset(days=2):
    dataset = CampaignDataset(CAMPAIGN_START, CAMPAIGN_START + days * DAY)
    for sid, base in (("s1", 400.0), ("s2", 250.0)):
        dataset.add_server_meta(ServerMeta(
            server_id=sid, asn=65000, sponsor="Net",
            city_key="Town, US", country="US", utc_offset_hours=-5,
            lat=40.0, lon=-75.0, business_type="isp"))
        for h in range(days * 24):
            down = base if h % 24 != 20 else base * 0.3
            dataset.record(MeasurementRecord(
                ts=CAMPAIGN_START + h * HOUR, region="us-east1",
                vm_name="vm", server_id=sid, tier=NetworkTier.PREMIUM,
                download_mbps=down, upload_mbps=95.0, latency_ms=21.5,
                download_loss_rate=1.5e-4, upload_loss_rate=2e-4))
    return dataset


# ----------------------------------------------------------------------
# export / import


def test_export_roundtrip(tmp_path):
    dataset = _dataset()
    manifest = export_dataset(dataset, tmp_path / "out")
    assert manifest.exists()
    assert (tmp_path / "out" / "measurements.csv").exists()
    assert (tmp_path / "out" / "servers.json").exists()

    loaded = load_dataset(tmp_path / "out")
    assert len(loaded) == len(dataset)
    assert set(loaded.servers) == set(dataset.servers)
    assert loaded.start_ts == dataset.start_ts
    for pair in dataset.pairs():
        original = dataset.table.series(pair)
        restored = loaded.table.series(pair)
        assert np.allclose(original["ts"], restored["ts"])
        assert np.allclose(original["download"], restored["download"],
                           atol=1e-3)
        assert np.allclose(original["latency"], restored["latency"],
                           atol=1e-3)


def test_export_roundtrip_preserves_analysis(tmp_path):
    from repro.core.congestion import detect
    dataset = _dataset()
    export_dataset(dataset, tmp_path / "out")
    loaded = load_dataset(tmp_path / "out")
    original = detect(dataset)
    restored = detect(loaded)
    assert restored.congested_day_fraction == pytest.approx(
        original.congested_day_fraction)
    assert len(restored.events) == len(original.events)


def test_load_rejects_missing_and_bad(tmp_path):
    with pytest.raises(AnalysisError):
        load_dataset(tmp_path / "missing")
    out = tmp_path / "bad"
    export_dataset(_dataset(), out)
    manifest = out / "manifest.json"
    manifest.write_text(manifest.read_text().replace(
        f'"schema_version": {SCHEMA_VERSION}', '"schema_version": 99'))
    with pytest.raises(AnalysisError):
        load_dataset(out)


def test_load_accepts_schema_v1(tmp_path):
    """A v1 export (no lost.csv, no retried counter) still loads."""
    out = tmp_path / "v1"
    export_dataset(_dataset(), out)
    manifest = out / "manifest.json"
    manifest.write_text(manifest.read_text().replace(
        f'"schema_version": {SCHEMA_VERSION}', '"schema_version": 1'))
    (out / "lost.csv").unlink()
    loaded = load_dataset(out)
    assert len(loaded) == len(_dataset())
    assert loaded.lost == []
    assert loaded.retried_tests == 0


def test_export_records_lost_and_digest(tmp_path):
    dataset = _dataset()
    dataset.mark_lost(CAMPAIGN_START + 3 * HOUR, "us-east1", "vm",
                      "s1", "preemption")
    dataset.retried_tests = 4
    digest = dataset_digest(dataset)
    assert digest == dataset_digest(dataset)  # stable
    export_dataset(dataset, tmp_path / "out")
    loaded = load_dataset(tmp_path / "out")
    assert loaded.lost == dataset.lost
    assert loaded.retried_tests == 4
    # The digest survives an export/load round trip.
    assert dataset_digest(loaded) == digest
    # ... and is sensitive to fault tagging.
    loaded.mark_lost(CAMPAIGN_START + 5 * HOUR, "us-east1", "vm",
                     "s2", "upload")
    assert dataset_digest(loaded) != digest


# ----------------------------------------------------------------------
# warts


def _trace():
    return Traceroute(
        src_ip=167772161, dst_ip=167837697, ts=12345.0, flow_id=3,
        reached=True,
        hops=(Hop(1, 167772162, 1.5), Hop(2, None, None),
              Hop(3, 167837697, 9.25)))


def test_warts_roundtrip():
    trace = _trace()
    line = warts.dumps(trace)
    assert "\n" not in line
    restored = warts.loads(line)
    assert restored == trace


def test_warts_file_roundtrip(tmp_path):
    traces = [_trace(), _trace()]
    path = tmp_path / "traces.warts.jsonl"
    assert warts.dump_file(traces, path) == 2
    loaded = list(warts.load_file(path))
    assert loaded == traces


def test_warts_rejects_garbage():
    with pytest.raises(MeasurementError):
        warts.loads("{not json")
    with pytest.raises(MeasurementError):
        warts.loads('{"format": "other", "hops": []}')


# ----------------------------------------------------------------------
# dashboard


def test_dashboard_renders_panels():
    dataset = _dataset()
    text = render_dashboard(dataset)
    assert "# CLASP campaign dashboard" in text
    assert "## us-east1" in text
    assert "download throughput distribution" in text
    # The daily 20:00 dip makes both servers congested offenders.
    assert "Town-Net" in text
    assert "congested s-hours" in text


def test_dashboard_empty_dataset():
    empty = CampaignDataset(CAMPAIGN_START, CAMPAIGN_START + DAY)
    text = render_dashboard(empty)
    assert "# CLASP campaign dashboard" in text
    assert "measurements: 0" in text
