"""Analysis layer: scatter, tier comparison, probability, summaries."""

import numpy as np
import pytest

from repro.cloud.tiers import NetworkTier
from repro.core.analysis import (
    congested_server_summary,
    congestion_probability,
    performance_scatter,
    tier_comparison,
    top_congested_pairs,
)
from repro.core.campaign import CampaignDataset
from repro.core.congestion import detect
from repro.core.records import MeasurementRecord, ServerMeta
from repro.simclock import CAMPAIGN_START
from repro.units import DAY, HOUR


def _meta(server_id, business="isp", offset=0.0):
    return ServerMeta(server_id=server_id, asn=65000, sponsor="Net",
                      city_key="Town, US", country="US",
                      utc_offset_hours=offset, lat=0.0, lon=0.0,
                      business_type=business)


def _record(ts, server_id, tier, down, up=95.0, latency=20.0):
    return MeasurementRecord(
        ts=ts, region="r1", vm_name="vm", server_id=server_id,
        tier=tier, download_mbps=down, upload_mbps=up,
        latency_ms=latency, download_loss_rate=0.0,
        upload_loss_rate=0.0)


def _paired_dataset(days=3):
    """Premium/standard measurements every hour; standard 25% faster."""
    dataset = CampaignDataset(CAMPAIGN_START, CAMPAIGN_START + days * DAY)
    dataset.add_server_meta(_meta("s1"))
    for h in range(days * 24):
        ts = CAMPAIGN_START + h * HOUR
        dataset.record(_record(ts + 60, "s1", NetworkTier.PREMIUM,
                               down=300.0, latency=30.0))
        dataset.record(_record(ts + 200, "s1", NetworkTier.STANDARD,
                               down=400.0, latency=60.0))
    return dataset


def test_tier_comparison_pairs_same_hour():
    dataset = _paired_dataset()
    comparison = tier_comparison(dataset, "r1")
    assert comparison.servers() == ["s1"]
    assert comparison.n_matched_hours == 3 * 24
    deltas = comparison.delta_download["s1"]
    assert np.allclose(deltas, (300 - 400) / 400)
    assert comparison.standard_faster_fraction("s1") == 1.0
    lat = comparison.delta_latency["s1"]
    assert np.allclose(lat, (30 - 60) / 60)  # premium latency lower


def test_tier_comparison_requires_both_tiers():
    dataset = CampaignDataset(CAMPAIGN_START, CAMPAIGN_START + DAY)
    dataset.add_server_meta(_meta("solo"))
    dataset.record(_record(CAMPAIGN_START, "solo", NetworkTier.PREMIUM,
                           300.0))
    comparison = tier_comparison(dataset, "r1")
    assert comparison.servers() == []
    assert comparison.all_deltas("download").size == 0


def test_tier_comparison_unknown_metric():
    from repro.errors import AnalysisError
    comparison = tier_comparison(_paired_dataset(), "r1")
    with pytest.raises(AnalysisError):
        comparison.all_deltas("jitter")


def test_performance_scatter_percentiles():
    dataset = CampaignDataset(CAMPAIGN_START, CAMPAIGN_START + 35 * DAY)
    dataset.add_server_meta(_meta("s1"))
    rng = np.random.default_rng(0)
    for h in range(35 * 24):
        dataset.record(_record(
            CAMPAIGN_START + h * HOUR, "s1", NetworkTier.PREMIUM,
            down=float(rng.uniform(100, 500)),
            latency=float(rng.uniform(10, 30))))
    points = performance_scatter(dataset, min_samples=48)
    # 35 days -> one full 30-day month plus a partial (5-day) month,
    # both over the min_samples bar (5 days = 120 samples).
    assert len(points) == 2
    first = points[0]
    assert 400 < first.p95_download_mbps < 500
    assert 10 < first.p5_latency_ms < 12
    # min_samples filters thin months.
    assert len(performance_scatter(dataset, min_samples=200)) == 1


def _congested_dataset():
    """Two servers: one congested daily at 20:00-21:00, one clean."""
    dataset = CampaignDataset(CAMPAIGN_START, CAMPAIGN_START + 10 * DAY)
    dataset.add_server_meta(_meta("bad", business="isp"))
    dataset.add_server_meta(_meta("good", business="hosting"))
    for day in range(10):
        for hour in range(24):
            ts = CAMPAIGN_START + day * DAY + hour * HOUR
            bad_down = 80.0 if hour in (20, 21) else 400.0
            dataset.record(_record(ts, "bad", NetworkTier.PREMIUM,
                                   bad_down))
            dataset.record(_record(ts, "good", NetworkTier.PREMIUM,
                                   400.0))
    return dataset


def test_congestion_probability_profile():
    dataset = _congested_dataset()
    report = detect(dataset, threshold=0.5)
    pair = ("r1", "bad", "premium")
    profile = congestion_probability(dataset, report, pair)
    assert profile.probability[20] == 1.0
    assert profile.probability[21] == 1.0
    assert profile.probability[5] == 0.0
    assert profile.peak_hour in (20, 21)
    assert profile.n_events == 20
    assert profile.label == "Town-Net"


def test_top_congested_pairs():
    dataset = _congested_dataset()
    report = detect(dataset, threshold=0.5)
    top = top_congested_pairs(report, "r1", k=5)
    assert top == [("r1", "bad", "premium")]
    assert top_congested_pairs(report, "other-region") == []


def test_congested_server_summary():
    dataset = _congested_dataset()
    report = detect(dataset, threshold=0.5)
    summary = congested_server_summary(dataset, report, "r1")
    assert summary["isp"] == (1, 1)       # the bad ISP server
    assert summary["hosting"] == (0, 1)   # the clean hosting server
