"""The example scripts parse, document themselves, and run end to end
at a miniature scale."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py"))


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "tier_comparison.py",
            "congestion_monitoring.py", "topology_survey.py",
            "open_data_export.py"} <= names


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles_and_has_docstring(example):
    source = example.read_text(encoding="utf-8")
    code = compile(source, str(example), "exec")
    assert code is not None
    assert source.lstrip().startswith(("#!", '"""')), example.name
    assert "Usage::" in source, f"{example.name} lacks usage docs"


@pytest.mark.parametrize("example", EXAMPLES, ids=lambda p: p.name)
def test_example_help(example):
    result = subprocess.run(
        [sys.executable, str(example), "--help"],
        capture_output=True, text=True, timeout=120)
    assert result.returncode == 0, result.stderr
    assert "usage" in result.stdout.lower()


def test_quickstart_runs_tiny(tmp_path):
    """One full example run end to end (smallest world, 2 days)."""
    example = next(p for p in EXAMPLES if p.name == "quickstart.py")
    result = subprocess.run(
        [sys.executable, str(example), "--scale", "0.05",
         "--days", "2", "--seed", "5"],
        capture_output=True, text=True, timeout=600)
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Congestion detection" in result.stdout
    assert "Threshold sweep" in result.stdout
