"""Per-rule fixtures for the repro.lint invariant checker.

Each positive fixture must trigger exactly the expected codes; each
negative fixture (seeded RNG in rng.py, conversions in units.py, ...)
must stay silent.
"""

import textwrap

import pytest

from repro.errors import ConfigError
from repro.lint import Finding, all_rules, get_rule, lint_text
from repro.lint.baseline import matches_baseline
from repro.lint.noqa import ALL_CODES, parse_noqa


def codes_of(source, module="repro.core.fixture", **kwargs):
    return [f.code for f in lint_text(textwrap.dedent(source),
                                      module=module, **kwargs)]


# -- registry ---------------------------------------------------------------

def test_rule_catalogue_is_complete():
    codes = [r.code for r in all_rules()]
    assert codes == sorted(codes)
    for expected in ("RPR001", "RPR002", "RPR003", "RPR004",
                     "RPR005", "RPR006", "RPR007", "RPR008"):
        assert expected in codes


def test_unknown_rule_code_rejected():
    with pytest.raises(ConfigError):
        get_rule("RPR999")


# -- RPR000 parse errors ----------------------------------------------------

def test_syntax_error_reported_as_rpr000():
    findings = lint_text("def broken(:\n    pass\n")
    assert [f.code for f in findings] == ["RPR000"]


# -- RPR001 nondeterministic calls ------------------------------------------

def test_wall_clock_flagged():
    assert codes_of("""
        import time
        t = time.time()
    """) == ["RPR001"]


def test_datetime_now_flagged():
    assert codes_of("""
        from datetime import datetime
        stamp = datetime.now()
    """) == ["RPR001"]


def test_stdlib_random_flagged():
    assert codes_of("""
        import random
        x = random.randint(1, 6)
    """) == ["RPR001"]


def test_uuid4_and_urandom_flagged():
    assert codes_of("""
        import os
        import uuid
        key = uuid.uuid4()
        salt = os.urandom(8)
    """) == ["RPR001", "RPR001"]


def test_local_variable_named_random_not_flagged():
    # Only import-introduced names resolve; a Generator held in a local
    # called `random` (or a method called .random()) is legitimate.
    assert codes_of("""
        def draw(rng):
            random = rng
            return random.random()
    """) == []


def test_seedtree_generator_usage_not_flagged():
    assert codes_of("""
        from repro.rng import SeedTree

        def jitter(seeds: SeedTree):
            return SeedTree(7).generator("jitter").normal()
    """, module="repro.tools.fixture") == []


# -- RPR002 magic unit literals ---------------------------------------------

def test_inline_mbps_conversion_flagged():
    # 2 findings: `* 1e6` and `/ 8` are two BinOps on the same line.
    assert codes_of("""
        def to_bytes(rate_mbps):
            return rate_mbps * 1e6 / 8
    """) == ["RPR002", "RPR002"]


def test_ms_division_flagged():
    assert codes_of("""
        def to_seconds(rtt_ms):
            return rtt_ms / 1000.0
    """) == ["RPR002"]


def test_gb_conversion_flagged():
    assert codes_of("""
        def to_bytes(size_gb):
            return size_gb * 1e9
    """) == ["RPR002"]


def test_conversions_allowed_inside_units_module():
    assert codes_of("""
        def mbps_to_bytes_per_sec(rate_mbps):
            return rate_mbps * 1e6 / 8.0
    """, module="repro.units") == []


def test_unitless_arithmetic_not_flagged():
    assert codes_of("""
        def scale(count):
            return count * 1000
    """) == []


def test_non_magic_constant_not_flagged():
    assert codes_of("""
        def pad(n_bytes):
            return n_bytes * 1460
    """) == []


# -- RPR003 bare builtin raises ---------------------------------------------

@pytest.mark.parametrize("builtin", ["ValueError", "RuntimeError",
                                     "KeyError", "Exception"])
def test_builtin_raise_flagged(builtin):
    assert codes_of(f"""
        def check(x):
            if x < 0:
                raise {builtin}("bad")
    """) == ["RPR003"]


def test_uncalled_builtin_raise_flagged():
    assert codes_of("""
        def check():
            raise ValueError
    """) == ["RPR003"]


def test_repro_error_raise_not_flagged():
    assert codes_of("""
        from repro.errors import ValidationError

        def check(x):
            if x < 0:
                raise ValidationError("bad")
    """) == []


def test_reraise_not_flagged():
    assert codes_of("""
        def check(x):
            try:
                return x[0]
            except IndexError:
                raise
    """) == []


# -- RPR004 layering violations ---------------------------------------------

def test_netsim_importing_core_flagged():
    assert codes_of("""
        from repro.core.clasp import Clasp
    """, module="repro.netsim.fixture") == ["RPR004"]


def test_cloud_importing_experiments_flagged():
    assert codes_of("""
        import repro.experiments.runner
    """, module="repro.cloud.fixture") == ["RPR004"]


def test_relative_upward_import_flagged():
    assert codes_of("""
        from ..core import clasp
    """, module="repro.netsim.fixture") == ["RPR004"]


def test_from_repro_import_layer_flagged():
    assert codes_of("""
        from repro import experiments
    """, module="repro.tools.fixture") == ["RPR004"]


def test_downward_import_allowed():
    assert codes_of("""
        from repro.netsim.topology import Topology
        from repro.cloud.api import CloudPlatform
    """, module="repro.core.fixture") == []


def test_unlayered_module_unconstrained():
    assert codes_of("""
        from repro.experiments import build_scenario
    """, module="repro.report.fixture") == []


def test_same_layer_import_allowed():
    assert codes_of("""
        from .topology import Topology
    """, module="repro.netsim.routing") == []


def test_provider_importing_engine_flagged():
    assert codes_of("""
        from repro.engine import events
    """, module="repro.cloud.providers.fixture") == ["RPR004"]


def test_provider_importing_core_flagged():
    assert codes_of("""
        import repro.core.campaign
    """, module="repro.cloud.providers.fixture") == ["RPR004"]


def test_provider_relative_engine_import_flagged():
    assert codes_of("""
        from ...engine import events
    """, module="repro.cloud.providers.fixture") == ["RPR004"]


def test_provider_sibling_imports_allowed():
    assert codes_of("""
        from repro.cloud.regions import Region
        from .base import CloudProvider
        from repro.errors import ProviderLookupError
    """, module="repro.cloud.providers.fixture") == []


# -- RPR005 bare except -----------------------------------------------------

def test_bare_except_flagged():
    assert codes_of("""
        def swallow(op):
            try:
                return op()
            except:
                return None
    """) == ["RPR005"]


def test_typed_except_not_flagged():
    assert codes_of("""
        def guard(op):
            try:
                return op()
            except Exception:
                return None
    """) == []


# -- RPR006 unseeded RNG construction ---------------------------------------

def test_default_rng_outside_rng_module_flagged():
    assert codes_of("""
        import numpy as np
        gen = np.random.default_rng(42)
    """) == ["RPR006"]


def test_np_random_module_functions_flagged():
    assert codes_of("""
        import numpy as np
        noise = np.random.normal(0, 1, 10)
    """) == ["RPR006"]


def test_from_import_default_rng_flagged():
    assert codes_of("""
        from numpy.random import default_rng
        gen = default_rng(0)
    """) == ["RPR006"]


def test_rng_module_itself_exempt():
    assert codes_of("""
        import numpy as np
        gen = np.random.default_rng(7)
    """, module="repro.rng") == []


def test_generator_annotation_not_flagged():
    assert codes_of("""
        import numpy as np

        def sample(rng: np.random.Generator) -> float:
            return float(rng.random())
    """) == []


# -- suppression and baseline ----------------------------------------------

def test_noqa_with_matching_code_suppresses():
    assert codes_of("""
        import time
        t = time.time()  # repro: noqa RPR001
    """) == []


def test_noqa_with_other_code_does_not_suppress():
    assert codes_of("""
        import time
        t = time.time()  # repro: noqa RPR002
    """) == ["RPR001"]


def test_bare_noqa_suppresses_everything():
    assert codes_of("""
        import time
        t = time.time()  # repro: noqa
    """) == []


def test_noqa_multiple_codes():
    assert parse_noqa("x = 1  # repro: noqa RPR001,RPR003") == \
        frozenset({"RPR001", "RPR003"})
    assert parse_noqa("x = 1  # repro: noqa RPR001 RPR003") == \
        frozenset({"RPR001", "RPR003"})
    assert parse_noqa("x = 1  # repro: noqa") is ALL_CODES
    assert parse_noqa("x = 1  # plain comment") is None


def test_baseline_exact_and_wildcard_match():
    finding = Finding("src/repro/tools/x.py", 42, "RPR003", "msg")
    assert matches_baseline({"src/repro/tools/x.py:42:RPR003"}, finding)
    assert matches_baseline({"src/repro/tools/x.py:*:RPR003"}, finding)
    assert not matches_baseline({"src/repro/tools/x.py:41:RPR003"}, finding)
    assert not matches_baseline({"src/repro/tools/x.py:42:RPR001"}, finding)


def test_select_limits_rules():
    source = """
        import time

        def bad(rate_mbps):
            raise ValueError(time.time() * rate_mbps / 1e6)
    """
    assert set(codes_of(source)) == {"RPR001", "RPR002", "RPR003"}
    assert codes_of(source, select=["RPR003"]) == ["RPR003"]


def test_finding_format():
    finding = Finding("src/repro/x.py", 3, "RPR001", "boom")
    assert finding.format() == "src/repro/x.py:3: RPR001 boom"
    assert finding.baseline_key() == "src/repro/x.py:3:RPR001"


# -- RPR007 engine isolation ------------------------------------------------

def test_engine_importing_core_flagged():
    assert codes_of("""
        from repro.core.campaign import CampaignDataset
    """, module="repro.engine.observers") == ["RPR007"]


def test_engine_relative_import_of_domain_flagged():
    assert codes_of("""
        from ..experiments import build_scenario
    """, module="repro.engine.lanes") == ["RPR007"]


def test_engine_allowed_imports_stay_silent():
    assert codes_of("""
        from repro.errors import ValidationError
        from repro.rng import SeedTree
        from repro.simclock import SimClock
        from repro.units import HOUR
        from .events import CampaignEvent
    """, module="repro.engine.bus") == []


def test_engine_rule_ignores_other_packages():
    assert codes_of("""
        from repro.core.campaign import CampaignDataset
    """, module="repro.report.fixture") == []


def test_engine_may_import_obs():
    assert codes_of("""
        from repro.obs.metrics import Histogram
    """, module="repro.engine.observers") == []


# -- RPR008 obs confinement -------------------------------------------------

def test_perf_counter_outside_obs_flagged():
    assert codes_of("""
        import time
        t0 = time.perf_counter()
    """) == ["RPR008"]


def test_monotonic_outside_obs_flagged():
    assert codes_of("""
        import time
        t = time.monotonic_ns()
    """, module="repro.netsim.tcp") == ["RPR008"]


def test_perf_counter_inside_obs_allowed():
    assert codes_of("""
        import time
        t0 = time.perf_counter()
    """, module="repro.obs.spans") == []


def test_absolute_wall_clock_still_rpr001_even_inside_obs():
    # The carve-out covers durations only; absolute time stays banned.
    assert codes_of("""
        import time
        now = time.time()
    """, module="repro.obs.spans") == ["RPR001"]


def test_obs_importing_domain_layer_flagged():
    assert codes_of("""
        from repro.netsim.tcp import multiflow_throughput_mbps
    """, module="repro.obs.exporters") == ["RPR008"]


def test_obs_importing_engine_flagged():
    assert codes_of("""
        from repro.engine.observers import MetricsObserver
    """, module="repro.obs.metrics") == ["RPR008"]


def test_obs_allowed_imports_stay_silent():
    assert codes_of("""
        import time
        from repro.errors import ConfigError
        from repro.simclock import SimClock
        from repro.units import s_to_ms
        from .spans import Tracer

        t0 = time.perf_counter()
    """, module="repro.obs", is_package=True) == []
