"""Golden-dataset determinism: same seed => byte-identical dataset.

The digests in ``tests/golden/digests.json`` pin the exact dataset a
fixed campaign shape produces, with faults off and with the default
fault plan.  Any drift - a reordered RNG draw, a changed export
serialization, a fault decision keyed differently - fails here.

Regenerate intentionally with ``scripts/regen_golden.py``.
"""

import json
import pathlib

import pytest

from repro.core.export import dataset_digest
from repro.experiments.scenario import build_scenario
from repro.faults import FaultPlan

GOLDEN_PATH = pathlib.Path(__file__).parent / "golden" / "digests.json"

# Keep in sync with scripts/regen_golden.py.
SEED = 11
SCALE = 0.05
REGION = "us-west1"
BUDGET_SERVERS = 8
DAYS = 2


def _run_campaign(faults):
    scenario = build_scenario(seed=SEED, scale=SCALE, faults=faults)
    clasp = scenario.clasp
    selection = clasp.select_topology_servers(REGION)
    plan = clasp.deploy_topology(REGION, selection,
                                 budget_servers=BUDGET_SERVERS)
    dataset = clasp.run_campaign([plan], days=DAYS)
    return scenario, dataset


@pytest.fixture(scope="module")
def golden():
    return json.loads(GOLDEN_PATH.read_text(encoding="utf-8"))


def test_golden_digest_faults_off(golden):
    _scenario, dataset = _run_campaign(None)
    assert dataset.lost_tests == 0
    assert dataset_digest(dataset) == golden["faults_off"]


def test_golden_digest_faults_default(golden):
    """With the default FaultPlan enabled, the campaign - including
    every injected fault, retry, and tagged loss - reproduces the
    committed digest exactly."""
    scenario, dataset = _run_campaign(FaultPlan.default())
    assert scenario.clasp.fault_injector is not None
    assert dataset_digest(dataset) == golden["faults_default"]


def test_golden_two_fresh_runs_identical():
    """Same seed, two full stack builds: byte-identical datasets."""
    _s1, first = _run_campaign(FaultPlan.default())
    _s2, second = _run_campaign(FaultPlan.default())
    assert dataset_digest(first) == dataset_digest(second)
    assert first.completed_tests == second.completed_tests
    assert first.lost == second.lost


def test_golden_faults_change_the_digest(golden):
    """Faults on vs off must not collide (the plans differ, so the
    datasets must too)."""
    assert golden["faults_off"] != golden["faults_default"]


@pytest.mark.parametrize("shards", [1, 4])
@pytest.mark.parametrize("batch", [False, True])
def test_golden_explicit_gcp_provider(golden, shards, batch):
    """``provider="gcp"`` routed through the provider abstraction must
    reproduce the pre-refactor digest byte-for-byte, for every
    execution mode (sharded, vectorized, both)."""
    scenario = build_scenario(seed=SEED, scale=SCALE, provider="gcp")
    assert scenario.clasp.platform.provider.name == "gcp"
    clasp = scenario.clasp
    selection = clasp.select_topology_servers(REGION)
    plan = clasp.deploy_topology(REGION, selection,
                                 budget_servers=BUDGET_SERVERS)
    dataset = clasp.run_campaign([plan], days=DAYS,
                                 shards=shards, batch=batch)
    assert dataset.provider == "gcp"
    assert dataset_digest(dataset) == golden["faults_off"]
