"""CLI subcommands."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_parser_rejects_unknown_experiment():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["experiment", "fig99"])


def test_world_command(capsys):
    assert main(["world", "--scale", "0.05", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "speed test servers" in out
    assert "story networks" in out


def test_cost_command(capsys):
    assert main(["cost", "--servers", "450", "--days", "30"]) == 0
    out = capsys.readouterr().out
    assert "total" in out
    # The paper's "over USD 6k per month" scale.
    total_line = [l for l in out.splitlines() if l.startswith("total")][0]
    total = float(total_line.split()[-1].replace(",", ""))
    assert total > 6000


def test_cost_standard_tier_cheaper(capsys):
    main(["cost", "--servers", "100", "--days", "10",
          "--tier", "premium"])
    prem = capsys.readouterr().out
    main(["cost", "--servers", "100", "--days", "10",
          "--tier", "standard"])
    std = capsys.readouterr().out

    def total(text):
        line = [l for l in text.splitlines() if l.startswith("total")][0]
        return float(line.split()[-1].replace(",", ""))

    assert total(std) < total(prem)


def test_quickloop_command(capsys):
    assert main(["quickloop", "--scale", "0.05", "--days", "2",
                 "--region", "us-west1", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert "tests completed" in out
    assert "congested s-days" in out


def test_campaign_command_with_faults(capsys, tmp_path):
    out_dir = tmp_path / "export"
    assert main(["campaign", "--scale", "0.05", "--days", "1",
                 "--seed", "3", "--faults", "heavy", "--servers", "6",
                 "--export", str(out_dir)]) == 0
    out = capsys.readouterr().out
    assert "faults=heavy" in out
    assert "tests completed" in out
    assert "dataset digest" in out
    assert "injected" in out
    assert (out_dir / "manifest.json").exists()
    assert (out_dir / "lost.csv").exists()


def test_campaign_command_faults_off_digest_stable(capsys):
    args = ["campaign", "--scale", "0.05", "--days", "1",
            "--seed", "3", "--servers", "6"]
    assert main(args) == 0
    first = capsys.readouterr().out
    assert main(args) == 0
    second = capsys.readouterr().out

    def digest(text):
        line = [l for l in text.splitlines()
                if l.startswith("dataset digest")][0]
        return line.split()[-1]

    assert digest(first) == digest(second)
    assert "injected" not in first  # no injector without --faults


def test_campaign_command_trace_and_metrics(capsys, tmp_path):
    import json

    trace_path = tmp_path / "trace.jsonl"
    assert main(["campaign", "--scale", "0.05", "--days", "1",
                 "--seed", "3", "--servers", "6",
                 "--trace", str(trace_path), "--metrics"]) == 0
    out = capsys.readouterr().out
    assert "engine events" in out
    assert "test-completed" in out
    assert "billed vm_hours" in out
    assert f"-> {trace_path}" in out
    lines = trace_path.read_text().splitlines()
    assert lines  # the whole campaign is on disk as JSON events
    kinds = {json.loads(line)["kind"] for line in lines}
    assert {"hour-started", "test-completed",
            "billing-charged", "campaign-finished"} <= kinds


def test_lint_command_clean_tree(capsys):
    import pathlib

    import repro

    src = pathlib.Path(repro.__file__).parent
    assert main(["lint", str(src)]) == 0
    assert "repro.lint: clean" in capsys.readouterr().out


def test_lint_command_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for code in ("RPR001", "RPR002", "RPR003", "RPR004",
                 "RPR005", "RPR006", "RPR007", "RPR008"):
        assert code in out


def test_lint_command_flags_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nts = time.time()\n")
    assert main(["lint", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "RPR001" in out


def test_lint_command_select(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text("import time\nts = time.time()\nraise ValueError('x')\n")
    assert main(["lint", str(bad), "--select", "RPR003"]) == 1
    out = capsys.readouterr().out
    assert "RPR003" in out
    assert "RPR001" not in out
