"""Cross-cloud workloads: the VM-pair matrix and provider choice.

The matrix must be bit-identical however the pair list is sharded
(shards in {1, 2, 4}, each on an identically-built fleet), and the
provider-choice analysis must flow through the *unchanged*
differential-selection path.
"""

import pytest

from repro.core.crosscloud import (CrossCloudMatrix, provider_choice,
                                   run_matrix)
from repro.core.selection.differential import (DifferentialSelection,
                                               LatencyClass)
from repro.errors import SelectionError, ValidationError
from repro.experiments.scenario import build_scenario
from repro.report.crosscloud import render_matrix, render_provider_choice

SEED = 11
SCALE = 0.05
FLEET = ("aws", "openstack")


def fresh_scenario():
    return build_scenario(seed=SEED, scale=SCALE, stories=False,
                          providers=FLEET)


@pytest.fixture(scope="module")
def scenario():
    return fresh_scenario()


@pytest.fixture(scope="module")
def matrix(scenario):
    return run_matrix(scenario.fleet, regions_per_provider=1)


# -- matrix -----------------------------------------------------------------

def test_matrix_covers_all_ordered_pairs(matrix):
    n = len(matrix.endpoints)
    assert n == 3  # one region per provider
    assert matrix.n_pairs == n * (n - 1)
    assert matrix.providers == ("gcp", "aws", "openstack")
    seen = {(c.src_provider, c.src_region, c.dst_provider, c.dst_region)
            for c in matrix.cells}
    assert len(seen) == matrix.n_pairs


def test_matrix_cells_are_physical(matrix):
    for cell in matrix.cells:
        assert cell.reachable
        assert cell.rtt_ms > 0.0
        assert 0.0 <= cell.loss_rate < 1.0
        assert cell.throughput_mbps > 0.0


def test_matrix_has_cross_provider_cells(matrix):
    cross = [c for c in matrix.cells if c.cross_provider]
    assert cross, "a multi-provider fleet must produce x-cloud pairs"


def test_matrix_vms_are_cleaned_up(scenario, matrix):
    for platform in scenario.fleet:
        leftovers = [vm for vm in platform.vms()
                     if vm.name.startswith("xc-") and vm.is_running]
        assert leftovers == []


def test_matrix_shard_deterministic():
    """shards in {1, 2, 4} on identically-built fleets: same cells."""
    results = []
    for shards in (1, 2, 4):
        sc = fresh_scenario()
        results.append(run_matrix(sc.fleet, regions_per_provider=1,
                                  shards=shards))
    assert results[0].cells == results[1].cells == results[2].cells
    assert results[0].endpoints == results[1].endpoints


def test_matrix_rejects_bad_arguments(scenario):
    with pytest.raises(ValidationError):
        run_matrix(scenario.fleet, shards=0)
    with pytest.raises(ValidationError):
        run_matrix(scenario.fleet, samples=0)


def test_matrix_cell_lookup(matrix):
    first = matrix.cells[0]
    assert matrix.cell(first.src_provider, first.src_region,
                       first.dst_provider, first.dst_region) is first
    with pytest.raises(SelectionError):
        matrix.cell("gcp", "nowhere1", "aws", "nowhere2")


def test_matrix_summary_and_rendering(matrix):
    summary = matrix.provider_pair_summary()
    assert summary, "reachable cells must summarize"
    for stats in summary.values():
        assert stats["median_rtt_ms"] > 0.0
        assert stats["median_throughput_mbps"] > 0.0
    text = render_matrix(matrix)
    assert "cross-cloud matrix" in text
    assert "per provider pair" in text


# -- provider choice --------------------------------------------------------

@pytest.fixture(scope="module")
def choice(scenario):
    return provider_choice(scenario.fleet, scenario.catalog,
                           scenario.clasp.prefix2as, "gcp", "aws",
                           seed=3)


def test_provider_choice_uses_the_stock_selector(choice):
    """The result is a plain DifferentialSelection relabelled into the
    synthetic region - proof the selection path ran unchanged."""
    assert isinstance(choice.selection, DifferentialSelection)
    assert choice.selection.region == "gcp-vs-aws"
    assert choice.label == "gcp-vs-aws"
    assert choice.selection.candidates
    assert choice.selection.selected
    for candidate in choice.selection.candidates:
        assert candidate.region == "gcp-vs-aws"
        assert candidate.latency_class in LatencyClass


def test_provider_choice_winner_counts(choice):
    counts = choice.winner_counts()
    assert set(counts) == {"gcp", "aws", "comparable"}
    assert sum(counts.values()) == len(choice.selection.candidates)


def test_provider_choice_is_deterministic():
    """Identically-built scenarios: identical candidates and picks.
    (Reruns on the *same* fleet attach fresh VM leaf hosts, so the
    guarantee is across builds, like the matrix's.)"""
    results = []
    for _ in range(2):
        sc = fresh_scenario()
        results.append(provider_choice(sc.fleet, sc.catalog,
                                       sc.clasp.prefix2as,
                                       "gcp", "openstack", seed=3))
    a, b = results
    assert a.selection.candidates == b.selection.candidates
    assert a.selection.server_ids() == b.selection.server_ids()


def test_provider_choice_needs_two_providers(scenario):
    with pytest.raises(ValidationError):
        provider_choice(scenario.fleet, scenario.catalog,
                        scenario.clasp.prefix2as, "gcp", "gcp")


def test_provider_choice_rendering(choice):
    text = render_provider_choice(choice)
    assert "provider choice gcp-vs-aws" in text
    assert "selected servers" in text
    assert "gcp lower" in text
