"""repro.obs: spans, metrics registry, exporters, and the campaign
integration (cross-layer span tree + golden digest with obs on)."""

from __future__ import annotations

import io
import json
import types

import pytest

import repro.obs as obs
from repro.core.congestion import detect
from repro.core.export import dataset_digest
from repro.engine import MetricsObserver, TraceObserver
from repro.errors import ConfigError, MissingEntryError, ValidationError
from repro.experiments.runner import ExperimentCache
from repro.experiments.scenario import build_scenario
from repro.faults import FaultPlan
from repro.obs import (Counter, FlightRecorder, Gauge, Histogram,
                       MetricsRegistry, Tracer)
from repro.obs.metrics import snapshot_percentile
from repro.obs.exporters import (metrics_to_jsonlines,
                                 metrics_to_prometheus, render_span_tree,
                                 spans_to_jsonlines, write_profile)
from repro.obs.spans import NULL_SPAN


@pytest.fixture()
def enabled_obs():
    """Fresh obs state for one test, always disabled afterwards."""
    obs.enable(capacity=64)
    yield obs
    obs.disable()


# ----------------------------------------------------------------------
# metrics primitives


def test_counter_increments_and_rejects_decrease():
    counter = Counter("c")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValidationError):
        counter.inc(-1)


def test_gauge_overwrites():
    gauge = Gauge("g")
    gauge.set(4)
    gauge.set(1.5)
    assert gauge.value == 1.5


def test_histogram_bucket_shape():
    hist = Histogram(n_buckets=8)
    for value in (0.25, 1.0, 3.0, 3.9, 1e9):
        hist.add(value)
    snap = hist.snapshot()
    assert snap["count"] == 5
    assert snap["max"] == 1e9
    # 0.25 -> "<1"; 1.0 -> "<2"; 3.0/3.9 -> "<4"; 1e9 -> capped bucket.
    assert snap["buckets"]["<1"] == 1
    assert snap["buckets"]["<2"] == 1
    assert snap["buckets"]["<4"] == 2
    assert snap["buckets"][f"<{2 ** 7}"] == 1
    with pytest.raises(ValidationError):
        hist.add(-0.1)
    with pytest.raises(ValidationError):
        Histogram(n_buckets=0)


def test_registry_get_or_create_and_type_claims():
    registry = MetricsRegistry()
    assert registry.counter("a") is registry.counter("a")
    registry.gauge("b")
    registry.histogram("h")
    assert registry.n_metrics == 3
    with pytest.raises(ConfigError):
        registry.gauge("a")
    with pytest.raises(ConfigError):
        registry.counter("h")
    with pytest.raises(ValidationError):
        registry.counter("")
    registry.reset()
    assert registry.n_metrics == 0


def test_registry_snapshot_is_sorted_and_detached():
    registry = MetricsRegistry()
    registry.counter("z").inc()
    registry.counter("a").inc(2)
    registry.histogram("lat").add(5.0)
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["a", "z"]
    snap["histograms"]["lat"]["buckets"]["<8"] = 99
    assert registry.snapshot()["histograms"]["lat"]["buckets"]["<8"] == 1


# ----------------------------------------------------------------------
# merging (the shard layer's forked workers ship their registries back
# to the parent, which folds them in via MetricsRegistry.merge)


def test_histogram_merge_is_exact():
    left = Histogram(n_buckets=8)
    right = Histogram(n_buckets=8)
    for value in (0.25, 3.0):
        left.add(value)
    for value in (3.9, 1e9):
        right.add(value)
    left.merge(right)
    snap = left.snapshot()
    assert snap["count"] == 4
    assert snap["max"] == 1e9
    assert snap["buckets"]["<1"] == 1
    assert snap["buckets"]["<4"] == 2
    assert snap["buckets"][f"<{2 ** 7}"] == 1
    # Exact: merged totals equal one histogram fed both streams.
    combined = Histogram(n_buckets=8)
    for value in (0.25, 3.0, 3.9, 1e9):
        combined.add(value)
    assert left.snapshot() == combined.snapshot()
    assert left.mean == combined.mean


def test_histogram_merge_rejects_shape_and_type_mismatch():
    wide = Histogram(n_buckets=40)
    narrow = Histogram(n_buckets=20)
    with pytest.raises(ValidationError, match="shapes differ"):
        wide.merge(narrow)
    with pytest.raises(ValidationError, match="only merge a Histogram"):
        wide.merge("not-a-histogram")


def test_registry_merge_adds_counters_and_overwrites_gauges():
    parent = MetricsRegistry()
    parent.counter("events").inc(10)
    parent.gauge("lanes").set(1.0)
    parent.histogram("lat").add(2.0)
    shard = MetricsRegistry()
    shard.counter("events").inc(5)
    shard.counter("shard.only").inc(1)
    shard.gauge("lanes").set(3.0)
    shard.histogram("lat").add(60.0)
    parent.merge(shard)
    snap = parent.snapshot()
    assert snap["counters"]["events"] == 15
    assert snap["counters"]["shard.only"] == 1
    assert snap["gauges"]["lanes"] == 3.0  # merged-in reading wins
    assert snap["histograms"]["lat"]["count"] == 2
    assert snap["histograms"]["lat"]["max"] == 60.0
    # The donor registry is untouched.
    assert shard.snapshot()["counters"]["events"] == 5


def test_registry_merge_order_is_last_wins_for_gauges():
    parent = MetricsRegistry()
    for reading in (2.0, 7.0):
        shard = MetricsRegistry()
        shard.gauge("depth").set(reading)
        parent.merge(shard)
    assert parent.snapshot()["gauges"]["depth"] == 7.0


def test_registry_merge_keeps_type_uniqueness():
    parent = MetricsRegistry()
    parent.counter("name")
    shard = MetricsRegistry()
    shard.gauge("name").set(1.0)
    with pytest.raises(ConfigError):
        parent.merge(shard)


def test_registry_merge_rejects_histogram_shape_mismatch():
    parent = MetricsRegistry()
    parent.histogram("lat", n_buckets=40).add(1.0)
    shard = MetricsRegistry()
    shard.histogram("lat", n_buckets=20).add(1.0)
    with pytest.raises(ValidationError, match="shapes differ"):
        parent.merge(shard)


# ----------------------------------------------------------------------
# spans


def test_tracer_nests_spans_and_records_depth():
    tracer = Tracer()
    with tracer.span("outer", layer="campaign", sim_ts=100.0) as outer:
        assert tracer.current is outer
        with tracer.span("inner", layer="netsim") as inner:
            assert inner.parent_id == outer.span_id
            assert inner.depth == 1
    assert tracer.current is None
    finished = tracer.finished()
    assert [span.name for span in finished] == ["inner", "outer"]
    assert tracer.layers() == ["campaign", "netsim"]
    tracer.reset()
    assert tracer.finished() == []


def test_span_error_status_and_propagation():
    tracer = Tracer()
    with pytest.raises(KeyError):
        with tracer.span("boom", layer="tools"):
            raise KeyError("x")
    (span,) = tracer.finished()
    assert span.status == "KeyError"
    assert span.wall_ms >= 0.0


def test_traced_decorator_wraps_function():
    tracer = Tracer()

    @tracer.traced("work", layer="analysis")
    def work(n):
        return n * 2

    assert work(21) == 42
    (span,) = tracer.finished()
    assert (span.name, span.layer) == ("work", "analysis")


def test_span_payload_drops_non_scalar_annotations():
    span_obj = obs.Span(span_id=1, parent_id=None, name="s",
                        layer="other", depth=0)
    span_obj.annotate(ok=True, n=3, blob={"not": "scalar"})
    payload = span_obj.payload()
    assert payload["annotations"] == {"ok": True, "n": 3}
    assert json.loads(json.dumps(payload)) == payload


def test_flight_recorder_bounds_memory():
    recorder = FlightRecorder(capacity=2)
    for i in range(5):
        recorder.record(obs.Span(span_id=i, parent_id=None, name=f"s{i}",
                                 layer="other", depth=0))
    assert len(recorder) == 2
    assert recorder.n_recorded == 5
    assert recorder.n_dropped == 3
    assert [span.name for span in recorder.spans()] == ["s3", "s4"]
    with pytest.raises(ValidationError):
        FlightRecorder(capacity=0)


# ----------------------------------------------------------------------
# module-level switch


def test_disabled_obs_is_inert():
    assert not obs.enabled()
    assert obs.span("x") is NULL_SPAN
    with obs.span("x") as sp:
        assert sp.annotate(a=1) is sp
    obs.inc("nope")
    obs.observe("nope", 1.0)
    obs.set_gauge("nope", 1.0)
    assert obs.snapshot() == {"counters": {}, "gauges": {},
                              "histograms": {}}
    with pytest.raises(ConfigError):
        obs.tracer()
    with pytest.raises(ConfigError):
        obs.registry()


def test_enabled_obs_records(enabled_obs):
    assert obs.enabled()
    with obs.span("step", layer="tools", sim_ts=5.0) as sp:
        sp.annotate(n=1)
    obs.inc("hits", 2)
    obs.observe("lat", 3.0)
    obs.set_gauge("depth", 7)
    snap = obs.snapshot()
    assert snap["counters"]["hits"] == 2
    assert snap["gauges"]["depth"] == 7.0
    assert snap["histograms"]["lat"]["count"] == 1
    assert obs.tracer().layers() == ["tools"]


def test_enable_twice_resets_state(enabled_obs):
    obs.inc("hits")
    obs.enable()
    assert obs.snapshot()["counters"] == {}


# ----------------------------------------------------------------------
# exporters


def _sample_snapshot():
    registry = MetricsRegistry()
    registry.counter("cache.hits").inc(5)
    registry.gauge("lanes").set(2.5)
    hist = registry.histogram("lat")
    for value in (0.5, 3.0, 3.0, 100.0):
        hist.add(value)
    return registry.snapshot()


def test_metrics_jsonlines_round_trip():
    text = metrics_to_jsonlines(_sample_snapshot())
    rows = [json.loads(line) for line in text.splitlines()]
    assert {row["kind"] for row in rows} == {"counter", "gauge",
                                             "histogram"}
    by_name = {row["name"]: row for row in rows}
    assert by_name["cache.hits"]["value"] == 5
    assert by_name["lat"]["count"] == 4
    assert metrics_to_jsonlines({"counters": {}}) == ""


def test_metrics_prometheus_cumulative_buckets():
    text = metrics_to_prometheus(_sample_snapshot())
    lines = text.splitlines()
    assert "# TYPE cache_hits counter" in lines
    assert "cache_hits 5" in lines
    assert "lanes 2.5" in lines
    # 0.5 -> <1; 3.0 x2 -> <4; 100.0 -> <128: cumulative 1, 3, 4.
    assert 'lat_bucket{le="1"} 1' in lines
    assert 'lat_bucket{le="4"} 3' in lines
    assert 'lat_bucket{le="128"} 4' in lines
    assert 'lat_bucket{le="+Inf"} 4' in lines
    assert "lat_sum 106.5" in lines
    assert "lat_count 4" in lines
    assert metrics_to_prometheus({}) == ""


def test_snapshot_percentile_walks_buckets():
    hist = Histogram()
    for value in (0.5, 3.0, 3.0, 100.0):
        hist.add(value)
    snap = hist.snapshot()
    # Ranks: p50 lands in the <4 bucket, p99 in the <128 bucket
    # (capped at the observed max).
    assert snapshot_percentile(snap, 0.5) == 4.0
    assert snapshot_percentile(snap, 0.25) == 1.0
    assert snapshot_percentile(snap, 0.99) == 100.0
    assert hist.percentile(0.99) == 100.0
    assert snapshot_percentile(Histogram().snapshot(), 0.5) == 0.0
    with pytest.raises(ValidationError):
        snapshot_percentile(snap, 0.0)
    with pytest.raises(ValidationError):
        snapshot_percentile(snap, 1.5)


def test_metrics_prometheus_percentile_lines():
    lines = metrics_to_prometheus(_sample_snapshot()).splitlines()
    assert "lat_p50 4" in lines
    assert "lat_p90 100" in lines
    assert "lat_p99 100" in lines


def test_metrics_prometheus_recorder_totals():
    recorder = FlightRecorder(capacity=2)
    for i in range(5):
        recorder.record(types.SimpleNamespace(span_id=i))
    text = metrics_to_prometheus(_sample_snapshot(), recorder=recorder)
    lines = text.splitlines()
    assert "obs_spans_recorded_total 5" in lines
    assert "obs_spans_dropped_total 3" in lines
    assert "# TYPE obs_spans_dropped_total counter" in lines


def test_registry_dump_state_round_trip():
    registry = MetricsRegistry()
    registry.counter("cache.hits").inc(5)
    registry.gauge("lanes").set(2.5)
    hist = registry.histogram("lat")
    for value in (0.5, 3.0, 3.0, 100.0):
        hist.add(value)
    clone = MetricsRegistry()
    clone.restore_state(registry.dump_state())
    assert clone.snapshot() == registry.snapshot()
    assert clone.dump_state() == registry.dump_state()
    # Per-name overwrite: names absent from the dump survive.
    other = MetricsRegistry()
    other.counter("other").inc(7)
    other.restore_state(registry.dump_state())
    assert other.snapshot()["counters"]["other"] == 7
    assert other.snapshot()["counters"]["cache.hits"] == 5


def test_registry_restore_state_rejects_mismatches():
    registry = MetricsRegistry()
    registry.histogram("lat").add(1.0)
    state = registry.dump_state()
    clone = MetricsRegistry()
    clone.counter("lat").inc()
    with pytest.raises(ConfigError):
        clone.restore_state(state)
    bad = MetricsRegistry()
    shape = dict(state["histograms"]["lat"])
    shape["counts"] = shape["counts"][:-1]
    with pytest.raises(ValidationError):
        bad.restore_state({"counters": {}, "gauges": {},
                           "histograms": {"lat": shape}})
    reshaped = MetricsRegistry()
    reshaped.histogram("lat", n_buckets=8)
    with pytest.raises(ValidationError):
        reshaped.restore_state(state)


def test_spans_jsonlines_round_trip():
    tracer = Tracer()
    with tracer.span("outer", layer="campaign", sim_ts=10.0):
        with tracer.span("inner", layer="netsim"):
            pass
    text = spans_to_jsonlines(tracer.finished())
    rows = [json.loads(line) for line in text.splitlines()]
    assert len(rows) == 2
    by_name = {row["name"]: row for row in rows}
    assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
    assert by_name["outer"]["sim_ts"] == 10.0
    assert spans_to_jsonlines([]) == ""


def test_render_span_tree_orphans_and_truncation():
    # An orphan (its parent fell off the flight-recorder ring) renders
    # as a root rather than vanishing.
    orphan = obs.Span(span_id=7, parent_id=3, name="orphan",
                      layer="netsim", depth=2)
    root = obs.Span(span_id=8, parent_id=None, name="root",
                    layer="campaign", depth=0, sim_ts=10.0,
                    status="KeyError")
    tree = render_span_tree([orphan, root])
    assert tree.splitlines()[0].startswith("orphan [netsim]")
    assert "root [campaign] 0.000ms sim_ts=10 !KeyError" in tree
    truncated = render_span_tree([orphan, root], max_spans=1)
    assert "(1 more spans)" in truncated
    with pytest.raises(ValidationError):
        render_span_tree([], max_spans=0)
    assert render_span_tree([]) == ""


def test_write_profile_directory(tmp_path, enabled_obs):
    tracer = Tracer(capacity=1)
    with tracer.span("a", layer="tools"):
        pass
    with tracer.span("b", layer="tools"):
        pass
    registry = MetricsRegistry()
    registry.counter("c").inc()
    files = write_profile(tmp_path / "prof", tracer, registry)
    names = sorted(path.name for path in files)
    assert names == ["metrics.jsonl", "metrics.prom", "profile.txt",
                     "spans.jsonl"]
    report = (tmp_path / "prof" / "profile.txt").read_text()
    assert "# hottest spans" in report
    assert "dropped 1 older spans" in report


# ----------------------------------------------------------------------
# engine observer integration


def _event(kind, **fields):
    return types.SimpleNamespace(kind=kind, **fields)


def test_metrics_observer_mirrors_into_registry():
    registry = MetricsRegistry()
    observer = MetricsObserver(registry=registry)
    observer.on_event(_event("test-completed", latency_ms=12.0))
    observer.on_event(_event("test-lost", reason="vm-crash"))
    observer.on_event(_event("billing-charged", category="vm",
                             amount_usd=0.25))
    snap = registry.snapshot()
    assert snap["counters"]["engine.events.test-completed"] == 1
    assert snap["counters"]["engine.lost.vm-crash"] == 1
    assert snap["counters"]["engine.usd.vm"] == 0.25
    assert snap["histograms"]["engine.latency_ms.test-completed"][
        "count"] == 1


def test_metrics_observer_snapshot_is_a_deep_copy():
    observer = MetricsObserver()
    observer.on_event(_event("test-completed", latency_ms=12.0))
    snap = observer.snapshot()
    snap["events"]["test-completed"] = 999
    snap["latency_ms"]["test-completed"]["count"] = 999
    fresh = observer.snapshot()
    assert fresh["events"]["test-completed"] == 1
    assert fresh["latency_ms"]["test-completed"]["count"] == 1


def test_trace_observer_jsonl_round_trip(small_scenario, deploy_us_plan):
    buffer = io.StringIO()
    trace = TraceObserver(buffer)
    plan = deploy_us_plan("us-west1", 4)
    small_scenario.clasp.run_campaign([plan], days=1, observers=(trace,))
    trace.close()
    lines = buffer.getvalue().splitlines()
    assert trace.n_written == len(lines) > 0
    kinds = set()
    for line in lines:
        payload = json.loads(line)
        kinds.add(payload["kind"])
    assert {"hour-started", "test-completed",
            "campaign-finished"} <= kinds


def test_campaign_metrics_raises_when_never_collected():
    cache = ExperimentCache(seed=3, scale=0.05)
    # A dataset injected from outside (here: a prior run without any
    # metrics observer) must produce a clear error, not a KeyError.
    cache._topology_dataset = object()
    with pytest.raises(MissingEntryError,
                       match="available campaign metrics"):
        cache.campaign_metrics("topology")
    with pytest.raises(MissingEntryError, match="unknown campaign"):
        cache.campaign_metrics("nope")


# ----------------------------------------------------------------------
# full-stack integration: the golden campaign with obs enabled

SEED = 11
SCALE = 0.05
REGION = "us-west1"
BUDGET_SERVERS = 8
DAYS = 2


@pytest.fixture(scope="module")
def instrumented_campaign():
    """The golden faults-default campaign, run once with obs on."""
    obs.enable(capacity=100_000)
    try:
        scenario = build_scenario(seed=SEED, scale=SCALE,
                                  faults=FaultPlan.default())
        clasp = scenario.clasp
        selection = clasp.select_topology_servers(REGION)
        plan = clasp.deploy_topology(REGION, selection,
                                     budget_servers=BUDGET_SERVERS)
        dataset = clasp.run_campaign([plan], days=DAYS)
        detect(dataset)  # analysis-layer spans
        return {
            "digest": dataset_digest(dataset),
            "spans": obs.tracer().finished(),
            "layers": obs.tracer().layers(),
            "snapshot": obs.snapshot(),
            "n_dropped": obs.tracer().recorder.n_dropped,
        }
    finally:
        obs.disable()


def test_instrumented_span_tree_covers_all_layers(instrumented_campaign):
    assert {"cloud", "speedtest", "netsim", "analysis", "campaign",
            "selection", "tools"} <= set(instrumented_campaign["layers"])
    assert instrumented_campaign["n_dropped"] == 0
    tree = render_span_tree(instrumented_campaign["spans"],
                            max_spans=10 ** 6)
    assert "campaign.run [campaign]" in tree
    assert "speedtest.run_test [speedtest]" in tree


def test_instrumented_span_parents_resolve(instrumented_campaign):
    spans = instrumented_campaign["spans"]
    by_id = {span.span_id: span for span in spans}
    netsim = [span for span in spans if span.layer == "netsim"]
    assert netsim
    for span in netsim:
        assert by_id[span.parent_id].name == "speedtest.run_test"


def test_instrumented_snapshot_exports_both_formats(
        instrumented_campaign):
    snap = instrumented_campaign["snapshot"]
    assert snap["counters"]["speedtest.tests"] > 0
    assert snap["counters"]["engine.events.test-completed"] > 0
    for line in metrics_to_jsonlines(snap).splitlines():
        json.loads(line)
    prom = metrics_to_prometheus(snap)
    assert 'speedtest_download_mbps_bucket{le="+Inf"}' in prom
    for line in spans_to_jsonlines(
            instrumented_campaign["spans"]).splitlines():
        json.loads(line)


def test_instrumentation_does_not_change_the_golden_digest(
        instrumented_campaign):
    import pathlib
    golden = json.loads(
        (pathlib.Path(__file__).parent / "golden"
         / "digests.json").read_text(encoding="utf-8"))
    assert instrumented_campaign["digest"] == golden["faults_default"]
