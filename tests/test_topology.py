"""Topology data structure invariants (on the hand-built mini world)."""

import pytest

from repro.errors import TopologyError
from repro.netsim.addressing import parse_ip
from repro.netsim.asn import ASType
from repro.netsim.topology import LinkKind


def test_stats(mini_world):
    stats = mini_world.topology.stats()
    assert stats["ases"] == 5
    assert stats["pops"] == 10
    assert stats["interdomain_links"] == 7


def test_pop_uniqueness_per_city(mini_world):
    topo = mini_world.topology
    with pytest.raises(TopologyError):
        topo.add_pop(mini_world.cloud_asn, "Westville, US",
                     parse_ip("10.100.0.99"))


def test_unknown_lookups_raise(mini_world):
    topo = mini_world.topology
    with pytest.raises(TopologyError):
        topo.as_of(999)
    with pytest.raises(TopologyError):
        topo.pop(9999)
    with pytest.raises(TopologyError):
        topo.link(9999)


def test_relationships(mini_world):
    topo = mini_world.topology
    assert topo.is_peer(100, 400)
    assert topo.is_customer(100, 200)
    assert not topo.is_customer(200, 100)
    assert topo.is_customer(500, 300)
    assert not topo.are_adjacent(400, 500)
    assert topo.providers_of(500) == {300}
    assert topo.customers_of(200) == {100, 300}
    assert topo.peers_of(100) == {400}


def test_neighbors(mini_world):
    topo = mini_world.topology
    assert topo.neighbors(100) == {200, 400}
    assert topo.neighbors(300) == {200, 400, 500}


def test_interdomain_registry(mini_world):
    topo = mini_world.topology
    cloud_links = topo.interdomain_links(100)
    assert len(cloud_links) == 4  # 2 peering + 2 transit
    between = topo.interdomain_between(100, 400)
    assert len(between) == 2
    assert {r.city_key for r in between} == {"Westville, US",
                                             "Eastburg, US"}


def test_interface_and_operator(mini_world):
    topo = mini_world.topology
    far_ip = parse_ip("10.100.8.2")  # ISP Alpha's side, cloud-numbered
    iface = topo.interface_by_ip(far_ip)
    assert iface is not None
    assert iface.address_asn == 100
    assert topo.operator_of_ip(far_ip) == 400
    assert topo.operator_of_ip(parse_ip("203.0.113.1")) is None


def test_aliases(mini_world):
    topo = mini_world.topology
    # ISP Alpha's east router: peering iface + transit iface + loopback.
    aliases = topo.aliases_of(parse_ip("10.100.8.6"))
    assert parse_ip("10.40.0.2") in aliases     # loopback
    assert parse_ip("10.40.8.1") in aliases     # its transit-side iface
    assert parse_ip("10.100.8.6") in aliases


def test_add_host_and_leaf_semantics(mini_world):
    topo = mini_world.topology
    host = topo.add_host(400, mini_world.pops["ispa-west"],
                         parse_ip("10.40.0.200"), capacity_mbps=1000.0)
    assert host.is_host
    assert topo.resolve_ip_to_pop(parse_ip("10.40.0.200")).pop_id \
        == host.pop_id
    link = topo.links_of_pop(host.pop_id)[0]
    assert link.kind is LinkKind.LAN
    with pytest.raises(TopologyError):
        topo.add_host(400, host.pop_id, parse_ip("10.40.0.201"), 100.0)


def test_resolve_ip_prefers_interfaces_then_prefixes(mini_world):
    topo = mini_world.topology
    # An interface IP resolves to its PoP.
    pop = topo.resolve_ip_to_pop(parse_ip("10.30.8.1"))
    assert pop.pop_id == mini_world.pops["transit-east"]
    # A plain address inside an announced prefix resolves by LPM.
    pop2 = topo.resolve_ip_to_pop(parse_ip("10.50.24.77"))
    assert pop2.pop_id == mini_world.pops["ispb-south"]
    assert topo.resolve_ip_to_pop(parse_ip("198.51.100.1")) is None


def test_link_endpoints_api(mini_world):
    topo = mini_world.topology
    link = topo.link(mini_world.links["peer-aw"])
    assert link.other_pop(link.pop_a) == link.pop_b
    assert link.direction_from(link.pop_a) == 0
    assert link.direction_from(link.pop_b) == 1
    with pytest.raises(TopologyError):
        link.other_pop(424242)


def test_validate_catches_self_loop_interdomain(mini_world):
    topo = mini_world.topology
    pops = topo.pops_of_as(100)
    link = topo.add_link(LinkKind.INTERDOMAIN, pops[0].pop_id,
                         pops[1].pop_id, 1000.0, 1.0)
    with pytest.raises(TopologyError):
        topo.validate()


def test_link_validation():
    from repro.netsim.topology import Link
    with pytest.raises(TopologyError):
        Link(1, LinkKind.BACKBONE, 1, 1, 100.0, 1.0)  # self loop
    with pytest.raises(TopologyError):
        Link(1, LinkKind.BACKBONE, 1, 2, -5.0, 1.0)   # bad capacity
    with pytest.raises(TopologyError):
        Link(1, LinkKind.BACKBONE, 1, 2, 100.0, -1.0)  # bad delay
