"""The alerting & SLO layer: rules, evaluator, daemon collector.

The hard contracts under test:

* daemon equivalence - one :class:`~repro.alerts.Collector` fed three
  successive campaign runs keeps a single live detector whose
  ``finalize()`` report equals batch ``detect()`` on the concatenated
  datasets, with a strictly monotone watermark across runs;
* deterministic alerting - the JSON-lines notification log is
  byte-identical across shard counts {1, 4} and across a save/restore
  restart mid-sequence;
* the shipped default rule set actually exercises the state machine:
  the V_H burn-rate rule both fires and resolves on the pinned
  campaign shape.
"""

import json

import pytest

from repro.alerts import (RULE_KINDS, AbsenceRule, BurnRateRule,
                          Collector, MetricHistory, RuleEvaluator,
                          ThresholdRule, alerts_to_prometheus,
                          concat_datasets, default_rules, load_rules,
                          notifications_to_jsonlines, parse_rule,
                          parse_rules)
from repro.cloud.tiers import NetworkTier
from repro.core.campaign import CampaignDataset
from repro.core.congestion import CongestionEvent, detect
from repro.core.records import MeasurementRecord, ServerMeta
from repro.errors import ConfigError, ValidationError
from repro.experiments.scenario import build_scenario
from repro.obs.metrics import MetricsRegistry
from repro.simclock import CAMPAIGN_START
from repro.units import DAY, HOUR

START = float(CAMPAIGN_START)

# Keep in sync with tests/test_streaming.py's pinned campaign shape
# (smaller server budget: three campaigns run per daemon sequence).
SEED, SCALE, REGION, BUDGET_SERVERS = 11, 0.05, "us-west1", 6
RUN_DAYS, N_RUNS = 1, 3


# ----------------------------------------------------------------------
# rules: parsing and validation


def test_parse_rule_each_kind():
    assert parse_rule({"kind": "threshold", "name": "t"}).kind \
        == "threshold"
    assert parse_rule({"kind": "absence", "name": "a"}).kind == "absence"
    rule = parse_rule({"kind": "burn-rate", "name": "b", "budget": 3.0})
    assert rule.kind == "burn-rate"
    assert rule.budget_rate() == 3.0 / (7.0 * 24.0)


def test_parse_rule_rejects_unknown_kind_and_fields():
    with pytest.raises(ConfigError):
        parse_rule({"kind": "nope", "name": "x"})
    with pytest.raises(ConfigError):
        parse_rule({"kind": "threshold", "name": "x", "bogus": 1})
    with pytest.raises(ConfigError):
        parse_rule("not-an-object")
    with pytest.raises(ConfigError):
        # stale_hours belongs to absence, not threshold
        parse_rule({"kind": "threshold", "name": "x", "stale_hours": 2})


def test_rule_field_validation():
    with pytest.raises(ConfigError):
        ThresholdRule(name="")
    with pytest.raises(ConfigError):
        ThresholdRule(name="x", severity="loud")
    with pytest.raises(ConfigError):
        ThresholdRule(name="x", agg="median")
    with pytest.raises(ConfigError):
        ThresholdRule(name="x", op="!=")
    with pytest.raises(ConfigError):
        ThresholdRule(name="x", window_hours=0.0)
    with pytest.raises(ConfigError):
        ThresholdRule(name="x", for_intervals=0)
    with pytest.raises(ConfigError):
        AbsenceRule(name="x", stale_hours=-1.0)
    with pytest.raises(ConfigError):
        BurnRateRule(name="x", max_burn=0.0)


def test_rule_scope_drops_unset_tags():
    rule = ThresholdRule(name="x", region="us-west1")
    assert rule.scope() == {"region": "us-west1"}
    assert ThresholdRule(name="y").scope() == {}


def test_parse_rules_rejects_duplicate_names():
    with pytest.raises(ConfigError):
        parse_rules([{"kind": "absence", "name": "same"},
                     {"kind": "threshold", "name": "same"}])


def test_load_rules_error_paths(tmp_path):
    with pytest.raises(ConfigError):
        load_rules(tmp_path / "missing.json")
    bad = tmp_path / "bad.json"
    bad.write_text("{not json", encoding="utf-8")
    with pytest.raises(ConfigError):
        load_rules(bad)
    scalar = tmp_path / "scalar.json"
    scalar.write_text('{"rules": 3}', encoding="utf-8")
    with pytest.raises(ConfigError):
        load_rules(scalar)


def test_example_rules_file_mirrors_default_rules():
    assert load_rules("examples/rules_default.json") == default_rules()


def test_rule_kinds_registry_mirrors_evaluator():
    # The runtime half of lint rule RPR013.
    assert len(set(RULE_KINDS)) == len(RULE_KINDS)
    for kind in RULE_KINDS:
        assert hasattr(RuleEvaluator,
                       "_eval_" + kind.replace("-", "_"))
    assert {rule.kind for rule in default_rules()} == set(RULE_KINDS)


# ----------------------------------------------------------------------
# evaluator: hand-built history


def _record(ts, download=100.0, region="us-west1", server_id="srv-1"):
    return MeasurementRecord(
        ts=ts, region=region, vm_name="vm-1", server_id=server_id,
        tier=NetworkTier.PREMIUM, download_mbps=download,
        upload_mbps=95.0, latency_ms=20.0, download_loss_rate=1e-4,
        upload_loss_rate=1e-4)


def _vh_event(ts):
    return CongestionEvent(
        pair=("us-west1", "srv-1", "premium"), ts=ts,
        local_hour=int(ts // HOUR) % 24, day_index=0, v_h=0.9,
        throughput_mbps=40.0, day_peak_mbps=400.0)


def test_threshold_rule_fires_after_streak_and_resolves():
    history = MetricHistory()
    rule = ThresholdRule(name="floor", agg="p50", op="<", value=50.0,
                         window_hours=1.0, for_intervals=2)
    evaluator = RuleEvaluator([rule], history, START)
    for hour in range(4):
        ts = START + hour * HOUR
        history.record_test("gcp", _record(ts + 60.0, download=10.0))
        evaluator.evaluate(ts + HOUR)
    # Breached from the first evaluation; fires on the second.
    firing = [n for n in evaluator.notifications if n.status == "firing"]
    assert len(firing) == 1
    assert firing[0].ts == START + 2 * HOUR
    assert firing[0].rule == "floor"
    assert evaluator.active_count == 1
    # A healthy window resolves it on the next evaluation.
    ts = START + 4 * HOUR
    history.record_test("gcp", _record(ts + 60.0, download=500.0))
    new = evaluator.evaluate(ts + HOUR)
    assert [n.status for n in new] == ["resolved"]
    assert evaluator.active_count == 0


def test_threshold_empty_window_never_breaches():
    history = MetricHistory()
    rule = ThresholdRule(name="floor", op="<", value=50.0)
    evaluator = RuleEvaluator([rule], history, START)
    assert evaluator.evaluate(START + DAY) == []
    assert evaluator.active_count == 0


def test_threshold_scope_filters_tags():
    history = MetricHistory()
    history.record_test("gcp", _record(START + 60.0, download=10.0,
                                       region="us-east1"))
    rule = ThresholdRule(name="floor", region="us-west1", op="<",
                         value=50.0, window_hours=2.0)
    evaluator = RuleEvaluator([rule], history, START)
    # The breach is in another region; the scoped rule sees no data.
    assert evaluator.evaluate(START + HOUR) == []


def test_absence_rule_anchors_at_start_then_resolves():
    history = MetricHistory()
    rule = AbsenceRule(name="stale", stale_hours=3.0)
    evaluator = RuleEvaluator([rule], history, START)
    assert evaluator.evaluate(START + 2 * HOUR) == []
    new = evaluator.evaluate(START + 4 * HOUR)
    assert [n.status for n in new] == ["firing"]
    history.record_test("gcp", _record(START + 5 * HOUR))
    new = evaluator.evaluate(START + 6 * HOUR)
    assert [n.status for n in new] == ["resolved"]


def test_burn_rate_rule_fires_and_resolves():
    history = MetricHistory()
    # Budget 1 event / day; window 6h; burn = 4n; fires on any event.
    rule = BurnRateRule(name="burn", budget=1.0, period_days=1.0,
                        window_hours=6.0, max_burn=1.0)
    evaluator = RuleEvaluator([rule], history, START)
    assert evaluator.evaluate(START + HOUR) == []
    history.record_vh_event("gcp", "us-west1", "premium",
                            _vh_event(START + 2 * HOUR))
    new = evaluator.evaluate(START + 3 * HOUR)
    assert [n.status for n in new] == ["firing"]
    assert new[0].value == pytest.approx(4.0)
    # The event ages out of the 6h window -> resolved.
    new = evaluator.evaluate(START + 9 * HOUR)
    assert [n.status for n in new] == ["resolved"]


def test_evaluator_rejects_bad_rules():
    history = MetricHistory()
    with pytest.raises(ConfigError):
        RuleEvaluator([ThresholdRule(name="a"),
                       AbsenceRule(name="a")], history, START)
    with pytest.raises(ConfigError):
        RuleEvaluator([ThresholdRule(name="x", table="nope")],
                      history, START)
    with pytest.raises(ConfigError):
        RuleEvaluator([ThresholdRule(name="x", field="nope")],
                      history, START)


def test_evaluator_mirrors_into_registry():
    history = MetricHistory()
    registry = MetricsRegistry()
    rule = AbsenceRule(name="stale", stale_hours=1.0)
    evaluator = RuleEvaluator([rule], history, START,
                              registry=registry)
    evaluator.evaluate(START + 2 * HOUR)
    counters = registry.snapshot()["counters"]
    assert counters["alerts.evaluations"] == 1
    assert counters["alerts.fired"] == 1
    assert registry.snapshot()["gauges"]["alerts.active"] == 1


def test_evaluator_state_round_trip():
    history = MetricHistory()
    rule = AbsenceRule(name="stale", stale_hours=1.0)
    evaluator = RuleEvaluator([rule], history, START)
    evaluator.evaluate(START + 2 * HOUR)
    state = json.loads(json.dumps(evaluator.state_dict()))
    clone = RuleEvaluator([rule], history, START)
    clone.restore_state(state)
    assert clone.state_dict() == evaluator.state_dict()
    assert clone.active_count == 1
    assert notifications_to_jsonlines(clone.notifications) \
        == notifications_to_jsonlines(evaluator.notifications)
    changed = RuleEvaluator([AbsenceRule(name="other")], history, START)
    with pytest.raises(ConfigError):
        changed.restore_state(state)


# ----------------------------------------------------------------------
# exporters


def test_notifications_jsonlines_stable_bytes():
    history = MetricHistory()
    rule = AbsenceRule(name="stale", stale_hours=1.0)
    evaluator = RuleEvaluator([rule], history, START)
    evaluator.evaluate(START + 2 * HOUR)
    text = notifications_to_jsonlines(evaluator.notifications)
    assert text.endswith("\n")
    row = json.loads(text.splitlines()[0])
    assert row["rule"] == "stale"
    assert row["status"] == "firing"
    assert row["severity"] == "page"
    assert notifications_to_jsonlines([]) == ""


def test_alerts_prometheus_exposition():
    history = MetricHistory()
    rule = AbsenceRule(name="stale", stale_hours=1.0)
    evaluator = RuleEvaluator([rule], history, START)
    evaluator.evaluate(START + 2 * HOUR)
    lines = alerts_to_prometheus(evaluator).splitlines()
    assert ('ALERTS{alertname="stale",alertstate="firing",'
            'severity="page"} 1') in lines
    assert 'alerts_notifications_total{status="firing"} 1' in lines
    assert 'alerts_notifications_total{status="resolved"} 0' in lines
    assert "alerts_evaluations_total 1" in lines


# ----------------------------------------------------------------------
# collector: synthetic feeds (no engine)


def _feed_day(collector, day, server_id="srv-1", download=400.0):
    """One synthetic day of hourly measurements + hour advances."""
    day_start = START + day * DAY
    for hour in range(24):
        ts = day_start + hour * HOUR
        collector.advance(ts)
        collector.ingest_record(_record(ts + 60.0, download=download,
                                        server_id=server_id))
    collector.advance(day_start + DAY)


def test_collector_requires_begin_run():
    collector = Collector(START)
    with pytest.raises(ValidationError):
        collector.ingest_record(_record(START + 60.0))


def test_collector_rejects_backwards_time():
    collector = Collector(START)
    collector.begin_run(lambda server_id: 0.0)
    collector.advance(START + 2 * HOUR)
    with pytest.raises(ValidationError):
        collector.advance(START + HOUR)


def test_collector_snapshot_cadence():
    hourly = Collector(START, snapshot_hours=1.0)
    sparse = Collector(START, snapshot_hours=6.0)
    for collector in (hourly, sparse):
        collector.begin_run(lambda server_id: 0.0)
        _feed_day(collector, 0)
    assert hourly.evaluator.evaluations == 25  # t=0 plus 24 boundaries
    assert sparse.evaluator.evaluations == 5
    with pytest.raises(ValidationError):
        Collector(START, snapshot_hours=0.0)


def test_collector_observer_requires_record_payload():
    collector = Collector(START)
    collector.begin_run(lambda server_id: 0.0)
    observer = collector.observer()

    class FakeEvent:
        ts = START
        record = None

    with pytest.raises(ValidationError):
        observer.on_test_completed(FakeEvent())


def test_collector_history_rows_and_counters():
    collector = Collector(START)
    collector.begin_run(lambda server_id: 0.0, provider="gcp")
    _feed_day(collector, 0, download=400.0)
    counters = collector.registry.snapshot()["counters"]
    assert counters["collector.observed"] == 24
    assert counters["collector.runs"] == 1
    assert collector.history.window_count(
        "throughput", START, START + DAY) == 24


def test_concat_datasets_validation():
    with pytest.raises(ValidationError):
        concat_datasets([])
    first = CampaignDataset(START, START + DAY)
    overlapping = CampaignDataset(START + HOUR, START + DAY + HOUR)
    with pytest.raises(ValidationError):
        concat_datasets([first, overlapping])


# ----------------------------------------------------------------------
# daemon mode: three successive engine campaigns, one collector

_SEQUENCES = {}


def _daemon_sequence(shards=1, restart_after=None):
    """Run N_RUNS successive campaigns into one collector.

    *restart_after* k serializes the collector after run k and
    continues from ``Collector.from_state_json`` - the daemon
    stop/restart path.  Returns (collector, datasets, watermarks).
    """
    key = (shards, restart_after)
    if key in _SEQUENCES:
        return _SEQUENCES[key]
    rules = default_rules()
    collector = None
    datasets = []
    watermarks = []
    for run in range(N_RUNS):
        run_start = START + run * RUN_DAYS * DAY
        scenario = build_scenario(seed=SEED, scale=SCALE)
        clasp = scenario.clasp
        selection = clasp.select_topology_servers(REGION)
        plan = clasp.deploy_topology(REGION, selection,
                                     budget_servers=BUDGET_SERVERS)
        collector, observer = clasp.collector(rules=rules,
                                              collector=collector)
        datasets.append(clasp.run_campaign(
            [plan], days=RUN_DAYS, start_ts=run_start,
            charge_billing=False, observers=[observer], shards=shards))
        watermarks.append(collector.detector.watermark)
        if restart_after == run + 1:
            collector = Collector.from_state_json(
                collector.state_json(), rules=rules)
    result = (collector, datasets, watermarks)
    _SEQUENCES[key] = result
    return result


def test_daemon_keeps_one_detector_across_runs():
    collector, datasets, watermarks = _daemon_sequence()
    assert collector.runs == N_RUNS
    assert all(later > earlier for earlier, later
               in zip(watermarks, watermarks[1:]))
    assert collector.detector.late_dropped == 0
    assert collector.detector.observed == sum(len(d) for d in datasets)


def test_daemon_finalize_equals_batch_on_concat():
    collector, datasets, _watermarks = _daemon_sequence()
    # finalize() is destructive; snapshot state first so the cached
    # sequence stays reusable by the other tests.
    probe = Collector.from_state_json(collector.state_json(),
                                      rules=default_rules())
    report = probe.finalize()
    batch = detect(concat_datasets(datasets))
    assert report.events == batch.events
    assert report.day_records == batch.day_records
    assert report == batch


def test_daemon_shipped_burn_rate_rule_fires_and_resolves():
    collector, _datasets, _watermarks = _daemon_sequence()
    transitions = {(n.rule, n.status)
                   for n in collector.evaluator.notifications}
    assert ("vh-budget-burn", "firing") in transitions
    assert ("vh-budget-burn", "resolved") in transitions


def test_daemon_notifications_byte_identical_across_shards():
    single, _d1, marks1 = _daemon_sequence(shards=1)
    sharded, _d4, marks4 = _daemon_sequence(shards=4)
    assert marks1 == marks4
    assert notifications_to_jsonlines(single.evaluator.notifications) \
        == notifications_to_jsonlines(sharded.evaluator.notifications)
    assert single.state_json() == sharded.state_json()


def test_daemon_restart_mid_sequence_is_byte_identical():
    uninterrupted, _d, _w = _daemon_sequence(shards=1)
    restarted, _rd, _rw = _daemon_sequence(shards=1, restart_after=2)
    assert restarted.runs == uninterrupted.runs
    assert notifications_to_jsonlines(
        restarted.evaluator.notifications) \
        == notifications_to_jsonlines(
            uninterrupted.evaluator.notifications)
    assert restarted.state_json() == uninterrupted.state_json()


def test_collector_state_schema_is_checked():
    collector, _datasets, _watermarks = _daemon_sequence()
    state = json.loads(collector.state_json())
    state["schema"] = "repro-collector/v999"
    with pytest.raises(ConfigError):
        Collector.from_state(state, rules=default_rules())
    with pytest.raises(ConfigError):
        # Restoring under a different rule set is a config error.
        Collector.from_state_json(collector.state_json(), rules=())


# ----------------------------------------------------------------------
# surfacing: serving layer + dashboard


def test_monitor_service_snapshot_carries_alerts():
    from repro.serve import MonitorService

    history = MetricHistory()
    rule = AbsenceRule(name="stale", stale_hours=1.0)
    evaluator = RuleEvaluator([rule], history, START)
    evaluator.evaluate(START + 2 * HOUR)
    collector = Collector(START)
    service = MonitorService(collector.detector, evaluator=evaluator)
    snapshot = service.query(START + 2 * HOUR)
    assert snapshot["alerts"] == {"active": 1, "firing": ["stale"],
                                  "notifications": 1}
    assert 'ALERTS{alertname="stale"' in service.prometheus()
    plain = MonitorService(collector.detector)
    assert plain.query(START)["alerts"] is None


def test_dashboard_renders_alerts_panel():
    from repro.report.dashboard import render_dashboard

    _collector, datasets, _watermarks = _daemon_sequence()
    history = MetricHistory()
    rule = AbsenceRule(name="stale", stale_hours=1.0)
    evaluator = RuleEvaluator([rule], history, START)
    evaluator.evaluate(START + 2 * HOUR)
    merged = concat_datasets(datasets)
    text = render_dashboard(merged,
                            notifications=evaluator.notifications)
    assert "## alerts" in text
    assert "stale" in text
    empty = render_dashboard(merged, notifications=[])
    assert "no alert transitions" in empty
