"""Speed test protocol engine and headless-browser wrapper."""

import numpy as np
import pytest

from repro.cloud.api import CloudPlatform, Direction
from repro.cloud.tiers import NetworkTier
from repro.errors import SpeedTestError
from repro.netsim.generator import GeneratorConfig, TopologyGenerator
from repro.rng import SeedTree
from repro.simclock import CAMPAIGN_START
from repro.speedtest.browser import HeadlessBrowser
from repro.speedtest.catalog import CatalogConfig, build_catalog
from repro.speedtest.protocol import SpeedTestConfig, SpeedTestEngine


@pytest.fixture(scope="module")
def rig():
    config = GeneratorConfig(
        n_tier1=4, n_transit=8, n_access_isp=24, n_big_isp=3,
        n_hosting=8, n_education=3, n_business=4)
    net = TopologyGenerator(config, SeedTree(61)).generate()
    catalog = build_catalog(
        net, CatalogConfig(n_us_servers=60, n_global_servers=10),
        SeedTree(62))
    platform = CloudPlatform(net)
    vm = platform.create_vm("us-west1", "n1-standard-2",
                            NetworkTier.PREMIUM, CAMPAIGN_START)
    vm.nic.apply_tc(ingress_mbps=1000.0, egress_mbps=100.0)
    engine = SpeedTestEngine(platform,
                             SpeedTestConfig(failure_rate=0.0),
                             SeedTree(63))
    return platform, catalog, vm, engine


def test_config_validation():
    with pytest.raises(ValueError):
        SpeedTestConfig(n_flows=0)
    with pytest.raises(ValueError):
        SpeedTestConfig(failure_rate=1.5)
    with pytest.raises(ValueError):
        SpeedTestConfig(n_flows=16, max_flows=8)


def test_flows_for_rtt_scaling():
    config = SpeedTestConfig(n_flows=24, max_flows=128,
                             flow_scale_rtt_ms=25.0)
    assert config.flows_for_rtt(10.0) == 24
    assert config.flows_for_rtt(50.0) == 48
    assert config.flows_for_rtt(1000.0) == 128
    with pytest.raises(ValueError):
        config.flows_for_rtt(0.0)


def test_result_respects_caps(rig):
    _platform, catalog, vm, engine = rig
    for server in catalog.servers(country="US")[:15]:
        result = engine.run(vm, server, CAMPAIGN_START + 8 * 3600)
        assert 0 < result.download_mbps <= 1000.0        # tc downlink
        assert 0 < result.upload_mbps <= 100.0           # tc uplink
        assert result.download_mbps <= server.effective_cap_mbps * 1.001
        assert result.latency_ms > 0
        assert 0 <= result.download_loss_rate < 1
        assert result.total_bytes > 0
        assert result.duration_s <= 120.0
        assert 0 <= result.cpu_utilization <= 1


def test_latency_close_to_path_rtt(rig):
    _platform, catalog, vm, engine = rig
    server = catalog.servers(country="US")[0]
    metrics = engine.path_snapshot(vm, server, CAMPAIGN_START,
                                   Direction.EGRESS)
    result = engine.run(vm, server, CAMPAIGN_START)
    # The reported (min-of-burst) latency sits just above the path RTT.
    assert result.latency_ms >= metrics.rtt_ms * 0.8
    assert result.latency_ms <= metrics.rtt_ms + 15.0


def test_failure_rate_and_retry():
    """With a huge failure rate the engine raises; the browser retries."""
    config = GeneratorConfig(
        n_tier1=4, n_transit=6, n_access_isp=10, n_big_isp=2,
        n_hosting=4, n_education=2, n_business=2)
    net = TopologyGenerator(config, SeedTree(64)).generate()
    catalog = build_catalog(
        net, CatalogConfig(n_us_servers=10, n_global_servers=2),
        SeedTree(65))
    platform = CloudPlatform(net)
    vm = platform.create_vm("us-west1", "n1-standard-2",
                            NetworkTier.PREMIUM, CAMPAIGN_START)
    engine = SpeedTestEngine(platform,
                             SpeedTestConfig(failure_rate=0.999),
                             SeedTree(66))
    server = catalog.servers()[0]
    with pytest.raises(SpeedTestError):
        for _ in range(20):
            engine.run(vm, server, CAMPAIGN_START)
    browser = HeadlessBrowser(engine, max_retries=1)
    with pytest.raises(SpeedTestError):
        for _ in range(20):
            browser.run_test(vm, server, CAMPAIGN_START)


def test_browser_artifacts(rig):
    _platform, catalog, vm, engine = rig
    browser = HeadlessBrowser(engine)
    server = catalog.servers(country="US")[1]
    artefacts = browser.run_test(vm, server, CAMPAIGN_START)
    assert artefacts.result.server_id == server.server_id
    assert artefacts.pcap_bytes > 0
    assert artefacts.capture_bytes > 0
    assert artefacts.upload_size_bytes == \
        artefacts.pcap_bytes + artefacts.capture_bytes
    assert not artefacts.retried


def test_browser_validation(rig):
    _platform, _catalog, _vm, engine = rig
    with pytest.raises(ValueError):
        HeadlessBrowser(engine, max_retries=-1)


def test_terminated_vm_cannot_test(rig):
    platform, catalog, _vm, engine = rig
    from repro.errors import CloudError
    doomed = platform.create_vm("us-east1", "n1-standard-2",
                                NetworkTier.PREMIUM, CAMPAIGN_START)
    platform.terminate_vm(doomed.name, CAMPAIGN_START)
    with pytest.raises(CloudError):
        engine.run(doomed, catalog.servers()[0], CAMPAIGN_START)


def test_congestion_collapses_throughput(rig):
    """Overloading the server's peering ingress tanks the download."""
    platform, catalog, vm, engine = rig
    from repro.netsim.traffic import DiurnalProfile
    net = platform.internet
    server = None
    for s in catalog.servers(country="US"):
        if net.topology.interdomain_between(platform.cloud_asn, s.asn):
            server = s
            break
    assert server is not None
    before = engine.run(vm, server, CAMPAIGN_START + 3600).download_mbps
    for record in net.topology.interdomain_between(platform.cloud_asn,
                                                   server.asn):
        net.utilization.set_profile(record.link_id, 1,
                                    DiurnalProfile(base=1.25,
                                                   noise_sigma=0.0))
    after = engine.run(vm, server, CAMPAIGN_START + 3600).download_mbps
    assert after < before * 0.5
