"""Alternative congestion detectors (autocorrelation, HMM)."""

import numpy as np
import pytest

from repro.cloud.tiers import NetworkTier
from repro.core.campaign import CampaignDataset
from repro.core.detectors import (
    AutocorrelationDetector,
    HmmDetector,
    VariabilityDetector,
    agreement_rate,
)
from repro.core.records import MeasurementRecord, ServerMeta
from repro.errors import AnalysisError
from repro.simclock import CAMPAIGN_START
from repro.units import DAY, HOUR

PAIR = ("r1", "s1", "premium")


def _dataset(pattern, days=6, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    dataset = CampaignDataset(CAMPAIGN_START, CAMPAIGN_START + days * DAY)
    dataset.add_server_meta(ServerMeta(
        server_id="s1", asn=65000, sponsor="Net", city_key="Town, US",
        country="US", utc_offset_hours=0.0, lat=0.0, lon=0.0))
    for day in range(days):
        for hour, value in enumerate(pattern):
            jitter = 1.0 + rng.normal(0, noise) if noise else 1.0
            dataset.record(MeasurementRecord(
                ts=CAMPAIGN_START + day * DAY + hour * HOUR,
                region="r1", vm_name="vm", server_id="s1",
                tier=NetworkTier.PREMIUM,
                download_mbps=max(1.0, float(value) * jitter),
                upload_mbps=95.0, latency_ms=20.0,
                download_loss_rate=0.0, upload_loss_rate=0.0))
    return dataset


CONGESTED = [400.0] * 19 + [60.0, 50.0, 70.0] + [400.0] * 2
FLAT = [400.0] * 24


def test_variability_detector_matches_paper_method():
    dataset = _dataset(CONGESTED)
    result = VariabilityDetector().detect(dataset, PAIR)
    assert result.method == "variability"
    assert result.n_events == 3 * 6
    assert result.congested_fraction == pytest.approx(3 / 24)


def test_variability_detector_validation():
    with pytest.raises(AnalysisError):
        VariabilityDetector(threshold=0.0)


def test_autocorrelation_detects_recurring_trough():
    dataset = _dataset(CONGESTED, noise=0.05)
    detector = AutocorrelationDetector()
    result = detector.detect(dataset, PAIR)
    assert result.n_events > 0
    # Events concentrate in the planted 19:00-21:00 trough.
    idx = np.nonzero(result.congested)[0]
    hours = (idx % 24)
    assert set(hours) <= {19, 20, 21}


def test_autocorrelation_ignores_nonrecurring_noise():
    dataset = _dataset(FLAT, noise=0.10)
    result = AutocorrelationDetector().detect(dataset, PAIR)
    # No diurnal structure -> no candidate -> no events.
    assert result.n_events == 0


def test_autocorrelation_lag_helper():
    values = np.array([1.0, 2.0] * 24)
    detector = AutocorrelationDetector()
    assert detector.lag_autocorrelation(values, 2) > 0.9
    assert detector.lag_autocorrelation(values, 1) < -0.9
    assert detector.lag_autocorrelation(np.ones(48), 24) == 0.0
    assert detector.lag_autocorrelation(np.ones(5), 24) == 0.0


def test_hmm_detects_two_regimes():
    dataset = _dataset(CONGESTED, noise=0.05)
    result = HmmDetector().detect(dataset, PAIR)
    assert result.method == "hmm"
    assert result.n_events > 0
    idx = np.nonzero(result.congested)[0]
    hours = set(idx % 24)
    assert hours <= {19, 20, 21}
    # All planted hours found on most days.
    assert result.n_events >= 3 * 6 - 3


def test_hmm_declines_single_regime():
    dataset = _dataset(FLAT, noise=0.08)
    result = HmmDetector().detect(dataset, PAIR)
    assert result.n_events == 0


def test_hmm_fit_predict_separation():
    detector = HmmDetector()
    values = np.array(([400.0] * 20 + [50.0] * 4) * 4)
    states, params = detector.fit_predict(values)
    assert params["separation"] > detector.min_separation
    assert params["mean_congested"] < params["mean_normal"]
    assert states.shape == values.shape


def test_hmm_short_series():
    detector = HmmDetector()
    states, params = detector.fit_predict(np.array([100.0] * 5))
    assert params["separation"] == 0.0
    assert not states.any()


def test_detectors_agree_on_clear_signal():
    dataset = _dataset(CONGESTED, noise=0.03)
    v = VariabilityDetector().detect(dataset, PAIR)
    h = HmmDetector().detect(dataset, PAIR)
    a = AutocorrelationDetector().detect(dataset, PAIR)
    assert agreement_rate(v, h) > 0.9
    assert agreement_rate(v, a) > 0.9


def test_hmm_validation():
    with pytest.raises(AnalysisError):
        HmmDetector(n_iter=0)


def test_detection_series_validation():
    from repro.core.detectors import DetectionSeries
    with pytest.raises(AnalysisError):
        DetectionSeries(PAIR, "m", np.zeros(3), np.zeros(2, bool),
                        np.zeros(3))
