"""Property-based tests with hand-rolled generators.

No hypothesis dependency: each property runs over many random cases
drawn from a :class:`~repro.rng.SeedTree`, so failures reproduce
exactly (the case index is part of the stream label).

Properties pinned here:

* ``V(s, d)`` is always in ``[0, 1]`` and every hourly ``V_H`` is too;
* the maximum ``V_H`` over a full day equals that day's ``V(s, d)``;
* billing totals are monotone under added egress;
* the browser's retry count never exceeds the configured bound, for
  any fault schedule.
"""

import numpy as np
import pytest

from repro.cloud.billing import CostTracker
from repro.cloud.tiers import NetworkTier
from repro.core.campaign import CampaignDataset
from repro.core.congestion import (MIN_SAMPLES_PER_DAY, hourly_variability,
                                   pair_daily_records)
from repro.core.records import MeasurementRecord, ServerMeta
from repro.errors import SpeedTestError
from repro.faults import FaultPlan
from repro.rng import SeedTree
from repro.simclock import CAMPAIGN_START
from repro.speedtest.browser import HeadlessBrowser
from repro.units import DAY, HOUR

N_CASES = 25

_PROPERTY_SEEDS = SeedTree(20210408)  # the paper's IMC year+month+day


def _case_rngs(label):
    """One independent generator per property case."""
    child = _PROPERTY_SEEDS.child(label)
    return [child.generator(f"case-{i}") for i in range(N_CASES)]


# ----------------------------------------------------------------------
# synthetic datasets


def _random_dataset(rng, days=None, holes=False):
    """A one-pair dataset of random hourly throughputs.

    With *holes*, a random subset of hours is dropped, imitating slots
    lost to faults.
    """
    days = days or int(rng.integers(1, 4))
    dataset = CampaignDataset(float(CAMPAIGN_START),
                              float(CAMPAIGN_START) + days * DAY)
    dataset.add_server_meta(ServerMeta(
        server_id="srv", asn=65001, sponsor="Net", city_key="Town, US",
        country="US", utc_offset_hours=0.0, lat=0.0, lon=0.0))
    for h in range(days * 24):
        if holes and rng.random() < 0.4:
            continue
        down = float(rng.uniform(0.0, 950.0))
        dataset.record(MeasurementRecord(
            ts=float(CAMPAIGN_START) + h * HOUR, region="r",
            vm_name="vm", server_id="srv", tier=NetworkTier.PREMIUM,
            download_mbps=down, upload_mbps=float(rng.uniform(0.0, 95.0)),
            latency_ms=float(rng.uniform(1.0, 300.0)),
            download_loss_rate=float(rng.uniform(0.0, 0.2)),
            upload_loss_rate=float(rng.uniform(0.0, 0.2))))
    return dataset


PAIR = ("r", "srv", NetworkTier.PREMIUM.value)


def test_property_daily_variability_in_unit_interval():
    for rng in _case_rngs("vsd-bounds"):
        dataset = _random_dataset(rng, holes=bool(rng.random() < 0.5))
        for record in pair_daily_records(dataset, PAIR):
            assert 0.0 <= record.variability <= 1.0
            assert record.n_samples >= MIN_SAMPLES_PER_DAY


def test_property_hourly_variability_in_unit_interval():
    for rng in _case_rngs("vh-bounds"):
        dataset = _random_dataset(rng, holes=bool(rng.random() < 0.5))
        _ts, vh = hourly_variability(dataset, PAIR)
        if vh.size:
            assert float(vh.min()) >= 0.0
            assert float(vh.max()) <= 1.0


def test_property_max_hourly_equals_daily():
    """max over a day of V_H(s, t) == V(s, d): both normalise by the
    day's peak, and the worst hour is the day's trough."""
    for rng in _case_rngs("vh-vs-vsd"):
        dataset = _random_dataset(rng)
        records = {r.day_index: r
                   for r in pair_daily_records(dataset, PAIR)}
        ts, vh = hourly_variability(dataset, PAIR)
        day_idx = ((ts - dataset.start_ts) // DAY).astype(int)
        for day in np.unique(day_idx):
            assert day in records
            worst = float(vh[day_idx == day].max())
            assert worst == pytest.approx(records[day].variability)


def test_property_short_days_are_guarded():
    """Days thinned below the sample floor contribute nothing."""
    for rng in _case_rngs("min-samples"):
        dataset = _random_dataset(rng, days=1, holes=True)
        n_kept = len(dataset)
        records = pair_daily_records(dataset, PAIR)
        if n_kept < MIN_SAMPLES_PER_DAY:
            assert records == []
            _ts, vh = hourly_variability(dataset, PAIR)
            assert vh.size == 0


# ----------------------------------------------------------------------
# billing monotonicity


def test_property_billing_monotone_under_added_egress():
    for rng in _case_rngs("billing"):
        costs = CostTracker()
        previous = costs.total_usd
        for _ in range(20):
            tier = (NetworkTier.PREMIUM if rng.random() < 0.5
                    else NetworkTier.STANDARD)
            costs.charge_egress(float(rng.uniform(0, 5e9)), tier)
            assert costs.total_usd >= previous
            previous = costs.total_usd
        by_category = costs.spend_by_category()
        assert by_category["egress"] == pytest.approx(costs.total_usd)


def test_property_egress_price_monotone_in_bytes():
    for rng in _case_rngs("egress-price"):
        prices = CostTracker().prices
        a = float(rng.uniform(0, 1e10))
        b = a + float(rng.uniform(0, 1e10))
        for tier in NetworkTier:
            assert prices.egress_usd(b, tier) >= prices.egress_usd(a, tier)


# ----------------------------------------------------------------------
# bounded retries under arbitrary fault schedules


class _FlakyEngine:
    """Engine stub failing per a pre-drawn (arbitrary) schedule."""

    class _Result:
        total_bytes = 1_000_000

    def __init__(self, failures):
        self.failures = list(failures)
        self.attempts = 0
        self.injector = None

    def run(self, vm, server, ts):
        index = self.attempts
        self.attempts += 1
        if index < len(self.failures) and self.failures[index]:
            raise SpeedTestError(f"scheduled failure #{index}")
        return self._Result()


def test_property_retry_count_bounded():
    for rng in _case_rngs("retry-bound"):
        max_retries = int(rng.integers(0, 6))
        # Any failure schedule at all, including "always fails".
        failures = [bool(rng.random() < 0.7) for _ in range(max_retries + 1)]
        engine = _FlakyEngine(failures)
        plan = FaultPlan(max_retries=max_retries)
        browser = HeadlessBrowser(engine, max_retries=max_retries,
                                  backoff=plan.backoff_s)
        try:
            artefacts = browser.run_test(object(), object(),
                                         float(CAMPAIGN_START))
        except SpeedTestError:
            # Budget exhausted: every allowed attempt was made.
            assert engine.attempts == max_retries + 1
            assert all(failures)
        else:
            assert artefacts.retried == (engine.attempts > 1)
        assert engine.attempts <= max_retries + 1


def test_property_backoff_schedule_is_increasing():
    for rng in _case_rngs("backoff"):
        plan = FaultPlan(backoff_base_s=float(rng.uniform(0.5, 30.0)),
                         backoff_factor=float(rng.uniform(1.0, 3.0)))
        delays = [plan.backoff_s(k) for k in range(5)]
        assert delays == sorted(delays)
        assert delays[0] == pytest.approx(plan.backoff_base_s)
