"""The tagged time-series store."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.tsdb import Table, TimeSeriesDB
from repro.errors import TSDBError


@pytest.fixture()
def table():
    t = Table("speedtest", ("region", "server"), ("down", "up"))
    t.append(3.0, ("w1", "s1"), (300.0, 95.0))
    t.append(1.0, ("w1", "s1"), (100.0, 90.0))
    t.append(2.0, ("w1", "s2"), (200.0, 92.0))
    t.append(5.0, ("e1", "s1"), (400.0, 91.0))
    return t


def test_schema_validation():
    with pytest.raises(TSDBError):
        Table("t", ("a",), ())
    with pytest.raises(TSDBError):
        Table("t", ("a", "a"), ("f",))
    with pytest.raises(TSDBError):
        Table("t", ("a",), ("f", "f"))


def test_append_validates_arity(table):
    with pytest.raises(TSDBError):
        table.append(1.0, ("w1",), (1.0, 2.0))
    with pytest.raises(TSDBError):
        table.append(1.0, ("w1", "s1"), (1.0,))


def test_series_sorted_by_ts(table):
    series = table.series(("w1", "s1"))
    assert list(series["ts"]) == [1.0, 3.0]
    assert list(series["down"]) == [100.0, 300.0]
    assert list(series["up"]) == [90.0, 95.0]


def test_series_missing_tags(table):
    with pytest.raises(TSDBError):
        table.series(("nope", "s1"))


def test_tag_combinations_and_distinct(table):
    assert table.tag_combinations() == [("e1", "s1"), ("w1", "s1"),
                                        ("w1", "s2")]
    assert table.distinct("region") == ["e1", "w1"]
    assert table.distinct("server") == ["s1", "s2"]
    with pytest.raises(TSDBError):
        table.distinct("nope")


def test_select_filters(table):
    hits = dict(table.select(region="w1"))
    assert set(hits) == {("w1", "s1"), ("w1", "s2")}
    hits2 = dict(table.select(region="w1", server="s2"))
    assert set(hits2) == {("w1", "s2")}
    with pytest.raises(TSDBError):
        list(table.select(bogus="x"))


def test_count_and_len(table):
    assert len(table) == 4
    assert table.count(region="w1") == 3
    assert table.count(region="w1", server="s1") == 2
    assert table.count(region="zz") == 0


def test_db_management():
    db = TimeSeriesDB()
    db.create_table("a", ("t",), ("f",))
    assert "a" in db
    assert db.tables() == ["a"]
    with pytest.raises(TSDBError):
        db.create_table("a", ("t",), ("f",))
    with pytest.raises(TSDBError):
        db.table("b")


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=1e6),
                          st.sampled_from(["a", "b", "c"]),
                          st.floats(min_value=-1e9, max_value=1e9)),
                min_size=1, max_size=60))
@settings(max_examples=60, deadline=None)
def test_series_preserves_all_rows_property(rows):
    table = Table("t", ("tag",), ("value",))
    for ts, tag, value in rows:
        table.append(ts, (tag,), (value,))
    assert len(table) == len(rows)
    for tag in {r[1] for r in rows}:
        expected = sorted((ts, v) for ts, t, v in rows if t == tag)
        series = table.series((tag,))
        assert list(series["ts"]) == [e[0] for e in expected]
        assert len(series["value"]) == len(expected)
        assert np.all(np.diff(series["ts"]) >= 0)


# -- batch extend + the sorted-view cache -----------------------------------

def test_extend_batches_rows_across_series(table):
    table.extend([
        (4.0, ("w1", "s1"), (350.0, 96.0)),
        (0.5, ("w1", "s2"), (150.0, 93.0)),
        (6.0, ("w2", "s9"), (500.0, 99.0)),  # brand-new series
    ])
    assert list(table.series(("w1", "s1"))["ts"]) == [1.0, 3.0, 4.0]
    assert list(table.series(("w1", "s2"))["ts"]) == [0.5, 2.0]
    assert list(table.series(("w2", "s9"))["down"]) == [500.0]
    assert len(table) == 7


def test_extend_validates_arity(table):
    with pytest.raises(TSDBError):
        table.extend([(1.0, ("w1",), (1.0, 2.0))])
    with pytest.raises(TSDBError):
        table.extend([(1.0, ("w1", "s1"), (1.0,))])


def test_extend_matches_repeated_append():
    rows = [(float(ts), ("r", "s"), (float(ts) * 2, 1.0))
            for ts in (3, 1, 2)]
    one = Table("a", ("region", "server"), ("down", "up"))
    for ts, tags, fields in rows:
        one.append(ts, tags, fields)
    other = Table("b", ("region", "server"), ("down", "up"))
    other.extend(rows)
    for key in one.tag_combinations():
        left, right = one.series(key), other.series(key)
        for name in ("ts", "down", "up"):
            assert np.array_equal(left[name], right[name])


def test_series_view_is_cached_until_append(table):
    first = table.series(("w1", "s1"))
    again = table.series(("w1", "s1"))
    assert first["ts"] is again["ts"]  # same cached array, no re-sort
    table.append(0.25, ("w1", "s1"), (50.0, 80.0))
    refreshed = table.series(("w1", "s1"))
    assert refreshed["ts"] is not first["ts"]  # cache invalidated
    assert list(refreshed["ts"]) == [0.25, 1.0, 3.0]
    # The stale view still holds its original (pre-append) data.
    assert list(first["ts"]) == [1.0, 3.0]


def test_series_arrays_are_read_only(table):
    series = table.series(("w1", "s1"))
    with pytest.raises(ValueError):
        series["ts"][0] = -1.0
    with pytest.raises(ValueError):
        series["down"][0] = -1.0
    assert np.array(series["ts"], copy=True).flags.writeable  # copies work


# ----------------------------------------------------------------------
# persistence (dump / from_dump)


def test_table_dump_round_trip(table):
    clone = Table.from_dump(table.dump())
    assert clone.name == table.name
    assert clone.tag_names == table.tag_names
    assert clone.field_names == table.field_names
    assert len(clone) == len(table)
    for key, original in table.select():
        restored = clone.series(key)
        for column in ("ts",) + table.field_names:
            assert np.array_equal(original[column], restored[column])


def test_table_dump_round_trips_through_json(table):
    import json

    clone = Table.from_dump(json.loads(json.dumps(table.dump())))
    assert clone.dump() == table.dump()


def test_dump_preserves_arrival_order_ties():
    # Two rows at the same ts: the sorted view's stable tie-break
    # follows arrival order, so the dump must preserve it.
    t = Table("t", ("k",), ("v",))
    t.append(1.0, ("a",), (10.0,))
    t.append(1.0, ("a",), (20.0,))
    clone = Table.from_dump(t.dump())
    assert np.array_equal(clone.series(("a",))["v"],
                          t.series(("a",))["v"])


def test_from_dump_rejects_malformed():
    with pytest.raises(TSDBError):
        Table.from_dump({"name": "t"})
    with pytest.raises(TSDBError):
        Table.from_dump([])


def test_from_dump_rejects_tag_arity_mismatch(table):
    dump = table.dump()
    dump["series"][0]["tags"].append("extra")
    with pytest.raises(TSDBError):
        Table.from_dump(dump)


def test_from_dump_rejects_field_column_mismatch(table):
    dump = table.dump()
    dump["series"][0]["fields"].append([0.0])
    with pytest.raises(TSDBError):
        Table.from_dump(dump)


def test_from_dump_rejects_ragged_columns(table):
    dump = table.dump()
    dump["series"][0]["fields"][0].append(999.0)
    with pytest.raises(TSDBError):
        Table.from_dump(dump)


def test_db_dump_round_trip(table):
    db = TimeSeriesDB()
    db.create_table("a", ("k",), ("v",)).append(1.0, ("x",), (2.0,))
    db._tables["speedtest"] = table
    clone = TimeSeriesDB.from_dump(db.dump())
    assert clone.tables() == db.tables()
    assert clone.dump() == db.dump()


def test_db_from_dump_rejects_malformed():
    with pytest.raises(TSDBError):
        TimeSeriesDB.from_dump({})
    with pytest.raises(TSDBError):
        TimeSeriesDB.from_dump(None)


def test_db_from_dump_rejects_repeated_table(table):
    dump = {"tables": [table.dump(), table.dump()]}
    with pytest.raises(TSDBError):
        TimeSeriesDB.from_dump(dump)
