"""Cloud platform building blocks: regions, machine types, NIC, VM."""

import pytest

from repro.cloud.machinetypes import MACHINE_TYPES, machine_type_by_name
from repro.cloud.nic import NetworkInterface, TokenBucket
from repro.cloud.regions import (
    PAPER_REGIONS,
    PAPER_TABLE1_REGIONS,
    REGIONS,
    region_by_name,
)
from repro.cloud.tiers import NetworkTier
from repro.cloud.vm import VirtualMachine, VMStatus
from repro.errors import CloudError, ConfigError


# ----------------------------------------------------------------------
# regions


def test_paper_regions_exist():
    for name in PAPER_REGIONS:
        region = region_by_name(name)
        assert region.zones
    assert set(PAPER_TABLE1_REGIONS) <= set(PAPER_REGIONS)


def test_region_zone_names():
    region = region_by_name("us-west1")
    assert [z.name for z in region.zones] == \
        ["us-west1-a", "us-west1-b", "us-west1-c"]
    assert region.zone("a").region_name == "us-west1"
    with pytest.raises(CloudError):
        region.zone("z")


def test_unknown_region():
    with pytest.raises(CloudError):
        region_by_name("mars-north1")


def test_region_cities_are_the_real_metros():
    assert REGIONS["us-west1"].city_key == "The Dalles, US"
    assert REGIONS["europe-west1"].city_key == "St. Ghislain, BE"
    assert REGIONS["us-central1"].city_key == "Council Bluffs, US"


# ----------------------------------------------------------------------
# machine types


def test_paper_machine_types():
    n1 = machine_type_by_name("n1-standard-2")
    assert n1.vcpus == 2
    assert n1.memory_gb == pytest.approx(7.5)
    assert n1.egress_cap_mbps == 10_000.0
    n2 = machine_type_by_name("n2-standard-2")
    assert n2.memory_gb == pytest.approx(8.0)


def test_machine_type_cpu_model():
    mtype = machine_type_by_name("n1-standard-2")
    assert mtype.cpu_throughput_cap_mbps == pytest.approx(3600.0)
    assert mtype.cpu_utilization_during_test(1800.0) == pytest.approx(0.5)
    assert mtype.cpu_utilization_during_test(1e6) == 1.0
    with pytest.raises(ValueError):
        mtype.cpu_utilization_during_test(-1.0)


def test_unknown_machine_type():
    with pytest.raises(CloudError):
        machine_type_by_name("x1-mega-512")


# ----------------------------------------------------------------------
# token bucket / NIC


def test_token_bucket_steady_rate():
    bucket = TokenBucket(rate_mbps=100.0, burst_bytes=1000)
    # Consume 12.5 MB starting at t=0: at 100 Mbps that takes ~1 s.
    done = bucket.consume(12_500_000, ts=0.0)
    assert done == pytest.approx(1.0, rel=0.01)


def test_token_bucket_burst_absorption():
    bucket = TokenBucket(rate_mbps=1.0, burst_bytes=10_000)
    assert bucket.consume(10_000, ts=0.0) == 0.0  # all from the burst
    # The next bytes must wait for refill.
    assert bucket.consume(125_000, ts=0.0) > 0.9


def test_token_bucket_refills_to_burst_cap():
    bucket = TokenBucket(rate_mbps=100.0, burst_bytes=5000)
    bucket.consume(5000, ts=0.0)
    assert bucket.tokens_at(1000.0) == 5000  # capped at burst


def test_token_bucket_rejects_time_travel():
    bucket = TokenBucket(rate_mbps=10.0)
    bucket.consume(10, ts=5.0)
    with pytest.raises(ValueError):
        bucket.consume(10, ts=4.0)


def test_token_bucket_validation():
    with pytest.raises(ConfigError):
        TokenBucket(rate_mbps=0.0)
    with pytest.raises(ConfigError):
        TokenBucket(rate_mbps=10.0, burst_bytes=0)
    with pytest.raises(ValueError):
        TokenBucket(10.0).consume(-5, 0.0)


def test_token_bucket_effective_rate():
    bucket = TokenBucket(rate_mbps=100.0)
    assert bucket.effective_rate_mbps(50.0) == 50.0
    assert bucket.effective_rate_mbps(500.0) == 100.0


def test_nic_tc_semantics():
    nic = NetworkInterface(ip=1, host_pop_id=1, attach_link_id=1)
    assert nic.ingress_cap_mbps() == float("inf")
    nic.apply_tc(ingress_mbps=1000.0, egress_mbps=100.0)
    assert nic.ingress_cap_mbps() == 1000.0
    assert nic.egress_cap_mbps() == 100.0
    nic.apply_tc(ingress_mbps=None, egress_mbps=None)
    assert nic.egress_cap_mbps() == float("inf")


# ----------------------------------------------------------------------
# VM


def _vm(name="vm-1"):
    nic = NetworkInterface(ip=1, host_pop_id=1, attach_link_id=1)
    return VirtualMachine(
        name=name, zone=region_by_name("us-west1").zone("a"),
        machine_type=machine_type_by_name("n1-standard-2"),
        tier=NetworkTier.PREMIUM, nic=nic, created_ts=0.0)


def test_vm_lifecycle_fields():
    vm = _vm()
    assert vm.is_running
    assert vm.region_name == "us-west1"
    vm.require_running()
    vm.status = VMStatus.TERMINATED
    vm.terminated_ts = 7200.0
    with pytest.raises(CloudError):
        vm.require_running()
    assert vm.uptime_hours(now_ts=1e9) == pytest.approx(2.0)


def test_vm_uptime_running():
    vm = _vm()
    assert vm.uptime_hours(now_ts=3600.0) == pytest.approx(1.0)
