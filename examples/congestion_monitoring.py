#!/usr/bin/env python3
"""Longitudinal congestion monitoring across several cloud regions.

The operational scenario the paper's system enables: keep hourly tabs
on interconnect health from multiple regions and report, per region
and per ISP, where and when throughput collapses - like an SRE
dashboard for cloud egress/ingress quality.

1. pilot-scan and deploy in several U.S. regions (budget-capped),
2. run a multi-day campaign,
3. print per-region congestion summaries, the top offenders with their
   hour-of-day profiles, and the business-type breakdown (Fig. 8).

Usage::

    python examples/congestion_monitoring.py [--days 7] [--scale 0.15]
"""

import argparse

from repro.core.analysis import (
    congested_server_summary,
    congestion_probability,
    top_congested_pairs,
)
from repro.core.congestion import detect
from repro.experiments import build_scenario
from repro.report.ascii import sparkline
from repro.report.tables import TextTable, format_percent


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--days", type=int, default=7)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--regions", nargs="*",
                        default=["us-west1", "us-east1", "us-central1"])
    args = parser.parse_args()

    print(f"Building scenario (scale={args.scale}) ...")
    scenario = build_scenario(seed=args.seed, scale=args.scale)
    clasp = scenario.clasp

    plans = []
    for region in args.regions:
        print(f"Pilot scan + deployment in {region} ...")
        selection = clasp.select_topology_servers(region)
        budget = max(10, len(selection.selected) // 2)
        plans.append(clasp.deploy_topology(region, selection,
                                           budget_servers=budget))
        print(f"  monitoring {len(plans[-1].server_ids)} servers with "
              f"{len(plans[-1].vms)} VMs")

    print(f"\nRunning {args.days} days of hourly measurements ...")
    dataset = clasp.run_campaign(plans, days=args.days)
    print(f"  {dataset.completed_tests} tests, "
          f"bill ${clasp.total_cost_usd():,.2f}")

    report = detect(dataset)
    print("\nPer-region congestion summary:")
    table = TextTable(["region", "servers", "congested servers",
                       "congested s-days", "congested s-hours"])
    for region in args.regions:
        region_report = detect(dataset, region=region)
        table.add_row([
            region,
            len(region_report.pair_hours),
            len(region_report.congested_pairs()),
            format_percent(region_report.congested_day_fraction),
            format_percent(region_report.congested_hour_fraction, 2),
        ])
    print(table.render())

    print("\nTop offenders (hour-of-day congestion probability, "
          "local time):")
    for region in args.regions:
        for pair in top_congested_pairs(report, region, k=3):
            profile = congestion_probability(dataset, report, pair)
            print(f"  [{region}] {profile.label[:40]:40s} "
                  f"{sparkline(profile.probability)} "
                  f"peak @{profile.peak_hour:02d}h "
                  f"({profile.n_events} events)")

    print("\nBusiness-type breakdown (congested / total):")
    breakdown = TextTable(["region", "type", "congested", "total"])
    for region in args.regions:
        for btype, (congested, total) in sorted(
                congested_server_summary(dataset, report,
                                         region).items()):
            breakdown.add_row([region, btype, congested, total])
    print(breakdown.render())


if __name__ == "__main__":
    main()
