#!/usr/bin/env python3
"""Quickstart: build a world, select servers, measure, detect congestion.

Runs the whole CLASP loop end to end at a small scale (about a minute):

1. generate a synthetic Internet with a cloud platform in it,
2. run the topology-based pilot scan (bdrmap + traceroutes) for one
   region and pick one server per interconnection,
3. deploy measurement VMs and run a 5-day hourly campaign,
4. detect congestion events and print the summary.

Usage::

    python examples/quickstart.py [--scale 0.15] [--days 5] [--seed 7]
"""

import argparse

import numpy as np

from repro.core.congestion import detect, threshold_sweep
from repro.experiments import build_scenario
from repro.report.tables import TextTable, format_percent


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15,
                        help="world scale (1.0 = paper size)")
    parser.add_argument("--days", type=int, default=5,
                        help="campaign length in days")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--region", default="us-west1")
    args = parser.parse_args()

    print(f"Building scenario (seed={args.seed}, scale={args.scale}) ...")
    scenario = build_scenario(seed=args.seed, scale=args.scale)
    clasp = scenario.clasp
    stats = scenario.internet.topology.stats()
    print(f"  {stats['ases']} ASes, {stats['links']} links, "
          f"{len(scenario.catalog)} speed test servers")

    print(f"\nPilot scan for {args.region} "
          "(bdrmap + traceroutes to every U.S. server) ...")
    selection = clasp.select_topology_servers(args.region)
    print(f"  bdrmap found {selection.n_interdomain_links} interdomain "
          "links")
    print(f"  U.S. servers traverse {selection.n_links_traversed} "
          "distinct links "
          f"({format_percent(selection.shared_interconnection_fraction)} "
          "of servers share one)")
    print(f"  selected {len(selection.selected)} servers "
          "(one per interconnection)")

    print(f"\nDeploying measurement VMs and running {args.days} days "
          "of hourly tests ...")
    plan = clasp.deploy_topology(args.region, selection)
    dataset = clasp.run_campaign([plan], days=args.days)
    print(f"  {dataset.completed_tests} tests completed "
          f"({dataset.failed_tests} failed), "
          f"cloud bill so far: ${clasp.total_cost_usd():,.2f}")

    print("\nCongestion detection (V_H > 0.5 below the daily peak):")
    report = detect(dataset)
    table = TextTable(["metric", "value"])
    table.add_row(["pair-days measured", report.n_s_days])
    table.add_row(["congested pair-days",
                   format_percent(report.congested_day_fraction)])
    table.add_row(["congested pair-hours",
                   format_percent(report.congested_hour_fraction, 2)])
    congested = report.congested_pairs()
    table.add_row(["servers with congestion on >10% of days",
                   f"{len(congested)} / {len(report.pair_hours)}"])
    print(table.render())

    if congested:
        print("\nMost congested servers:")
        ranked = sorted(congested,
                        key=lambda p: -len(report.events_of(p)))[:5]
        for pair in ranked:
            meta = dataset.server_meta(pair[1])
            events = report.events_of(pair)
            hours = sorted({e.local_hour for e in events})
            print(f"  {meta.label:45s} {len(events):4d} events, "
                  f"local hours {hours[0]:02d}-{hours[-1]:02d}")

    hs, day_frac, _ = threshold_sweep(dataset, np.arange(0.1, 1.0, 0.1))
    print("\nThreshold sweep (fraction of congested pair-days vs H):")
    print("  " + "  ".join(f"H={h:.1f}:{f * 100:4.1f}%"
                           for h, f in zip(hs, day_frac)))


if __name__ == "__main__":
    main()
