#!/usr/bin/env python3
"""Interconnection topology survey: what bdrmap sees from each region.

A tooling-focused walk-through of the measurement substrate, without
running a throughput campaign:

1. build the prefix-to-AS dataset ("the BGP table"),
2. run bdrmap pilot scans from several regions and validate the
   inference against the simulator's ground truth,
3. traceroute to a handful of speed test servers, resolve every hop,
   and show how servers group onto shared interconnections.

Usage::

    python examples/topology_survey.py [--scale 0.15]
"""

import argparse

from repro.experiments import build_scenario
from repro.netsim.addressing import format_ip
from repro.report.tables import TextTable, format_percent
from repro.simclock import CAMPAIGN_START


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--regions", nargs="*",
                        default=["us-west1", "us-east1"])
    args = parser.parse_args()

    scenario = build_scenario(seed=args.seed, scale=args.scale)
    clasp = scenario.clasp
    topo = scenario.internet.topology
    truth = {r.far_ip
             for r in topo.interdomain_links(scenario.internet.cloud_asn)}
    print(f"Ground truth: the cloud has {len(truth)} interdomain link "
          "interfaces\n")

    print("bdrmap pilot scans:")
    table = TextTable(["region", "inferred links", "neighbors",
                       "precision", "recall"])
    results = {}
    for region in args.regions:
        src = clasp.platform.region_pop(region)
        result = clasp.bdrmap.run(src.pop_id, float(CAMPAIGN_START))
        results[region] = result
        correct = len(result.far_ips() & truth)
        table.add_row([
            region, len(result), len(result.neighbors()),
            format_percent(correct / len(result)),
            format_percent(correct / len(truth)),
        ])
    print(table.render())

    region = args.regions[0]
    result = results[region]
    hop_index = result.build_hop_index()
    src = clasp.platform.region_pop(region)

    print(f"\nTraceroutes from {region} to five U.S. servers:")
    groups = {}
    for server in scenario.catalog.servers(country="US")[:5]:
        trace = clasp.scamper.trace_to_ip(
            src.pop_id, server.ip, float(CAMPAIGN_START))
        hops = []
        border = None
        for ip in trace.responding_ips():
            asn = clasp.prefix2as.lookup(ip)
            hops.append(f"{format_ip(ip)}(AS{asn})")
            if border is None:
                hit = hop_index.get(ip)
                if hit is not None:
                    border = hit
        print(f"\n  {server.server_id} ({server.sponsor}, "
              f"{server.city_key}):")
        print("    " + " -> ".join(hops))
        if border is not None:
            link = result.links[border]
            print(f"    crosses border {format_ip(border)} "
                  f"toward AS{link.neighbor_asn}")
            groups.setdefault(border, []).append(server.server_id)

    shared = {b: ids for b, ids in groups.items() if len(ids) > 1}
    if shared:
        print("\nServers sharing an interconnection:")
        for border, ids in shared.items():
            print(f"  {format_ip(border)}: {', '.join(ids)}")
    else:
        print("\n(no shared interconnections among these five; "
              "the full pilot scan finds plenty)")


if __name__ == "__main__":
    main()
