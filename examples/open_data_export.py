#!/usr/bin/env python3
"""Open-data workflow: run a campaign, publish it, re-analyze it.

The paper released CLASP's measurements publicly; this example shows
the reproduction's equivalent pipeline:

1. run a short campaign,
2. export the dataset to a documented on-disk layout
   (manifest + servers.json + measurements.csv),
3. reload it as an independent consumer would and re-run the
   congestion analysis, verifying the results survive the round trip,
4. render the operational dashboard from the reloaded data.

Usage::

    python examples/open_data_export.py [--out /tmp/clasp-data]
"""

import argparse
import pathlib

from repro.core.congestion import detect
from repro.core.export import export_dataset, load_dataset
from repro.experiments import build_scenario
from repro.report.dashboard import render_dashboard


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="/tmp/clasp-data")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--days", type=int, default=3)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print("Running a short campaign ...")
    scenario = build_scenario(seed=args.seed, scale=args.scale)
    clasp = scenario.clasp
    selection = clasp.select_topology_servers("us-east1")
    plan = clasp.deploy_topology("us-east1", selection, budget_servers=30)
    dataset = clasp.run_campaign([plan], days=args.days)
    print(f"  {dataset.completed_tests} measurements collected")

    out = pathlib.Path(args.out)
    manifest = export_dataset(dataset, out)
    size_kb = sum(f.stat().st_size for f in out.iterdir()) / 1024
    print(f"\nExported to {out} ({size_kb:.0f} KiB):")
    for f in sorted(out.iterdir()):
        print(f"  {f.name}")

    print("\nReloading as an independent consumer ...")
    reloaded = load_dataset(out)
    original_report = detect(dataset)
    reloaded_report = detect(reloaded)
    print(f"  measurements: {len(reloaded)} "
          f"(original {len(dataset)})")
    print(f"  congestion events: {len(reloaded_report.events)} "
          f"(original {len(original_report.events)})")
    match = (len(reloaded) == len(dataset)
             and len(reloaded_report.events)
             == len(original_report.events))
    print(f"  round-trip analysis identical: "
          f"{'yes' if match else 'NO'}")

    print("\n" + render_dashboard(reloaded, reloaded_report, top_k=3))


if __name__ == "__main__":
    main()
