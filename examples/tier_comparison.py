#!/usr/bin/env python3
"""Differential-based tier study: premium WAN vs public Internet.

Reproduces the paper's europe-west1 experiment end to end:

1. run the Speedchecker-style preliminary latency study from edge
   vantage points over both network tiers,
2. classify <city, AS> tuples (premium lower / comparable / standard
   lower) and select ~17 test servers,
3. deploy a premium + standard VM pair and measure for several days,
4. compare the tiers: relative throughput/latency differences and
   per-server win rates (the paper's Fig. 5).

Usage::

    python examples/tier_comparison.py [--days 4] [--scale 0.15]
"""

import argparse

import numpy as np

from repro.core.analysis import tier_comparison
from repro.experiments import build_scenario
from repro.experiments.scenario import apply_differential_story
from repro.report.ascii import ascii_cdf
from repro.report.tables import TextTable, format_percent

REGION = "europe-west1"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.15)
    parser.add_argument("--days", type=int, default=4)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()

    print(f"Building scenario (scale={args.scale}) ...")
    scenario = build_scenario(seed=args.seed, scale=args.scale)
    clasp = scenario.clasp

    print("Preliminary latency study from edge vantage points ...")
    selection = clasp.select_differential_servers(
        REGION, regions_for_study=list(scenario.differential_regions),
        target_count=17)
    print(f"  {len(selection.candidates)} qualifying <city, AS> tuples, "
          f"{len(selection.selected)} servers selected")
    table = TextTable(["server", "city", "class", "delta (std-prem) ms"])
    for server, candidate in selection.selected:
        table.add_row([server.server_id, server.city_key,
                       candidate.latency_class.value,
                       f"{candidate.delta_ms:+.1f}"])
    print(table.render())

    # The world the paper measured: warm premium interconnects, a few
    # bursty-lossy ones, standard-tier congestion for some targets.
    apply_differential_story(scenario, selection)

    print(f"\nMeasuring both tiers hourly for {args.days} days ...")
    plan = clasp.deploy_differential(REGION, selection)
    dataset = clasp.run_campaign([plan], days=args.days)
    print(f"  {dataset.completed_tests} tests recorded")

    comparison = tier_comparison(dataset, REGION)
    downloads = comparison.all_deltas("download")
    uploads = comparison.all_deltas("upload")
    latencies = comparison.all_deltas("latency")

    print(f"\nRelative differences, delta = (prem - std) / std "
          f"({comparison.n_matched_hours} matched hours):")
    summary = TextTable(["metric", "std faster", "median delta",
                         "|delta| < 0.5"])
    for name, deltas in (("download", downloads), ("upload", uploads),
                         ("latency", latencies)):
        summary.add_row([
            name,
            format_percent(float((deltas < 0).mean())),
            f"{np.median(deltas):+.3f}",
            format_percent(float((np.abs(deltas) < 0.5).mean())),
        ])
    print(summary.render())

    print("\nDownload delta CDF (negative = standard tier faster):")
    print(ascii_cdf(downloads))

    print("\nPer-server standard-tier win rate (download):")
    for server_id in comparison.servers():
        frac = comparison.standard_faster_fraction(server_id)
        meta = dataset.server_meta(server_id)
        bar = "#" * int(round(frac * 30))
        print(f"  {meta.label[:40]:40s} {bar:30s} "
              f"{format_percent(frac)}")


if __name__ == "__main__":
    main()
